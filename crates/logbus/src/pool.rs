//! Pool tier: capped free-lists for hot-path batch `Vec`s.
//!
//! The batched data plane moves records in `Vec<Record>` /
//! `Vec<StoredRecord>` buffers. Most of them live their whole life on
//! one thread (producer flush buffers, consumer fetch buffers), so the
//! fast tier is a plain thread-local free-list. Buffers that cross
//! threads (the async producer hands batches from the caller thread to
//! its sender thread) drain into a small global overflow list the
//! originating thread refills from, closing the loop without a lock on
//! the same-thread path.
//!
//! Both tiers are capped: at most [`LOCAL_MAX`] / [`GLOBAL_MAX`] idle
//! buffers, each retained only when its capacity is at most
//! [`MAX_KEEP_ELEMS`] elements, so the pool bounds memory instead of
//! hoarding a high-water mark.
//!
//! Byte storage is pooled separately by the `bytes` shim's chunk
//! free-list (see `bytes::pool_stats`); this module only recycles the
//! record-pointer vectors.

use crate::record::{Record, StoredRecord};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Max idle buffers kept per thread, per type.
const LOCAL_MAX: usize = 32;
/// Max idle buffers kept in the cross-thread overflow list, per type.
const GLOBAL_MAX: usize = 64;
/// Buffers with more capacity than this many elements are dropped
/// rather than pooled.
const MAX_KEEP_ELEMS: usize = 1 << 16;

static REUSED: AtomicUsize = AtomicUsize::new(0);
static RECYCLED: AtomicUsize = AtomicUsize::new(0);

/// (buffers handed back out of the pool, buffers returned to the pool)
/// since process start — a diagnostic hook for tests asserting the
/// recycle loop is live.
pub fn stats() -> (usize, usize) {
    (
        REUSED.load(Ordering::Relaxed),
        RECYCLED.load(Ordering::Relaxed),
    )
}

macro_rules! pool_tier {
    ($acquire:ident, $recycle:ident, $elem:ty, $local:ident, $global:ident) => {
        thread_local! {
            static $local: RefCell<Vec<Vec<$elem>>> = const { RefCell::new(Vec::new()) };
        }
        static $global: Mutex<Vec<Vec<$elem>>> = Mutex::new(Vec::new());

        /// Takes a cleared buffer from the pool, or allocates an empty
        /// one when both tiers are dry.
        pub fn $acquire() -> Vec<$elem> {
            let local = $local.with(|l| l.borrow_mut().pop());
            if let Some(v) = local {
                REUSED.fetch_add(1, Ordering::Relaxed);
                return v;
            }
            if let Some(v) = $global.lock().pop() {
                REUSED.fetch_add(1, Ordering::Relaxed);
                return v;
            }
            Vec::new()
        }

        /// Returns a buffer to the pool (clearing it first). Oversize
        /// buffers and overflow beyond both tiers' caps fall through to
        /// the allocator.
        pub fn $recycle(mut v: Vec<$elem>) {
            v.clear();
            if v.capacity() == 0 || v.capacity() > MAX_KEEP_ELEMS {
                return;
            }
            RECYCLED.fetch_add(1, Ordering::Relaxed);
            let overflow = $local.with(|l| {
                let mut l = l.borrow_mut();
                if l.len() < LOCAL_MAX {
                    l.push(v);
                    None
                } else {
                    Some(v)
                }
            });
            if let Some(v) = overflow {
                let mut g = $global.lock();
                if g.len() < GLOBAL_MAX {
                    g.push(v);
                } else {
                    RECYCLED.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    };
}

pool_tier!(
    record_vec,
    recycle_record_vec,
    Record,
    RECORD_VECS,
    RECORD_OVERFLOW
);
pool_tier!(
    stored_vec,
    recycle_stored_vec,
    StoredRecord,
    STORED_VECS,
    STORED_OVERFLOW
);
// Coder scratch for the engines' coded data planes (beamline emits one
// encoded `Vec<u8>` per element); capacity cap = 64 KiB per buffer.
pool_tier!(byte_vec, recycle_byte_vec, u8, BYTE_VECS, BYTE_OVERFLOW);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn acquire_recycle_round_trip() {
        let (reused_before, _) = stats();
        let mut v = record_vec();
        v.reserve(128);
        let cap = v.capacity();
        v.push(Record::from_value("x"));
        recycle_record_vec(v);
        let v2 = record_vec();
        assert!(v2.is_empty(), "recycled buffers come back cleared");
        assert!(v2.capacity() >= cap, "capacity is retained");
        let (reused_after, _) = stats();
        assert!(reused_after > reused_before);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let (_, recycled_before) = stats();
        recycle_record_vec(Vec::new());
        let (_, recycled_after) = stats();
        assert_eq!(recycled_before, recycled_after);
    }

    #[test]
    fn stored_vec_tier_is_independent() {
        let mut v = stored_vec();
        v.reserve(8);
        recycle_stored_vec(v);
        assert!(stored_vec().capacity() >= 8);
    }

    #[test]
    fn cross_thread_recycling_reaches_the_overflow_tier() {
        let (_, recycled_before) = stats();
        // A worker thread recycles more buffers than its local tier
        // holds; the surplus must land in the global overflow list
        // (worker-local buffers die with the thread otherwise).
        let handle = std::thread::spawn(|| {
            for _ in 0..(LOCAL_MAX + 4) {
                let mut v = record_vec();
                v.reserve(64);
                recycle_record_vec(v);
            }
        });
        handle.join().unwrap();
        let (_, recycled_after) = stats();
        assert!(
            recycled_after >= recycled_before + LOCAL_MAX,
            "worker recycles must be counted past the local cap"
        );
        // Any thread can then draw from the shared pool; buffers always
        // come back cleared.
        let v = record_vec();
        assert!(v.is_empty());
        recycle_record_vec(v);
    }
}
