//! Producers: batched, acknowledged, optionally rate-limited sends.

use crate::bus::Bus;
use crate::config::Acks;
use crate::error::{Error, Result};
use crate::handle::PartitionWriter;
use crate::record::Record;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a producer picks the partition for a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitioner {
    /// Always use the given partition. The benchmark's data sender uses
    /// `Fixed(0)` since its topics have a single partition.
    Fixed(u32),
    /// Rotate over the topic's partitions.
    #[default]
    RoundRobin,
    /// Hash the record key (keyless records fall back to round-robin).
    KeyHash,
}

/// A records-per-second pacing limit, matching the data-sender
/// configuration parameter described in the paper (§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Maximum sustained records per second.
    pub records_per_second: f64,
}

impl RateLimit {
    /// Creates a rate limit.
    ///
    /// # Panics
    ///
    /// Panics if `records_per_second` is not strictly positive.
    pub fn per_second(records_per_second: f64) -> Self {
        assert!(records_per_second > 0.0, "rate must be positive");
        RateLimit { records_per_second }
    }
}

/// Producer configuration.
#[derive(Debug, Clone)]
pub struct ProducerConfig {
    /// Acknowledgement level awaited per batch.
    pub acks: Acks,
    /// Records buffered per (topic, partition) before an automatic flush.
    pub batch_records: usize,
    /// Partition selection strategy.
    pub partitioner: Partitioner,
    /// Optional pacing limit.
    pub rate_limit: Option<RateLimit>,
    /// Retry schedule for transient broker errors; applied to metadata
    /// resolution and, through the cached idempotent writers, to every
    /// append.
    pub retry: crate::RetryPolicy,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            acks: Acks::Leader,
            batch_records: 256,
            partitioner: Partitioner::default(),
            rate_limit: None,
            retry: crate::RetryPolicy::default(),
        }
    }
}

/// A timestamped copy of one producer's counters.
///
/// Returned by [`Producer::metrics`]. Deliberately **not** `Copy`: the
/// old `ProducerMetrics` value was easy to squirrel away and misread as
/// live; the capture time makes staleness explicit. The counters behind
/// it are [`obs::Counter`] instruments, so the producer also feeds the
/// fleet-wide `logbus.producer.*` totals in the global registry while
/// instrumentation is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a snapshot is a point-in-time capture; dropping it unread discards the measurement"]
pub struct ProducerMetricsSnapshot {
    /// Capture time, microseconds since the Unix epoch.
    pub at_unix_micros: u64,
    /// Records successfully handed to the bus.
    pub sent: u64,
    /// Records dropped because `acks=0` suppressed a send error.
    pub dropped: u64,
    /// Flush operations performed (automatic and explicit).
    pub flushes: u64,
}

/// Per-instance counters (always live — they are producer semantics,
/// not optional telemetry).
#[derive(Debug, Default)]
struct ProducerCounters {
    sent: obs::Counter,
    dropped: obs::Counter,
    flushes: obs::Counter,
}

/// A batching producer over any [`Bus`].
///
/// Records are buffered per (topic, partition) and flushed when a buffer
/// reaches [`ProducerConfig::batch_records`], on [`Producer::flush`], and
/// on drop (best effort).
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use logbus::{Broker, Producer, Record, TopicConfig};
///
/// let broker = Broker::new();
/// broker.create_topic("t", TopicConfig::default())?;
/// let mut producer = Producer::new(broker.clone());
/// for i in 0..100 {
///     producer.send("t", Record::from_value(format!("{i}")))?;
/// }
/// producer.flush()?;
/// assert_eq!(broker.latest_offset("t", 0)?, 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Producer {
    bus: Arc<dyn Bus>,
    config: ProducerConfig,
    /// Per-topic state. A linear-scanned `Vec` rather than a map: a
    /// producer talks to a handful of topics (the benchmark uses one), so
    /// the steady-state lookup is a length check plus one `memcmp` —
    /// cheaper than hashing the name, and allocation-free for `&str`
    /// callers.
    topics: Vec<TopicEntry>,
    counters: ProducerCounters,
    pacing_started: Option<Instant>,
    paced_records: u64,
    closed: bool,
}

#[derive(Debug)]
struct TopicEntry {
    name: String,
    state: TopicState,
}

/// Cached per-topic producer state: record buffers and resolved partition
/// writers, both indexed by partition number.
#[derive(Debug, Default)]
struct TopicState {
    /// Partition count, cached after the first successful bus query
    /// (`logbus` topics never change their partition count).
    partition_count: Option<u32>,
    /// Round-robin cursor for this topic.
    round_robin: u32,
    /// `buffers[p]` holds the records buffered for partition `p`.
    buffers: Vec<Vec<Record>>,
    /// `writers[p]` is the cached produce handle for partition `p`,
    /// resolved lazily on first flush (records may be buffered before the
    /// topic exists; resolution failures surface exactly where the old
    /// name-based produce failed).
    writers: Vec<Option<PartitionWriter>>,
}

impl TopicState {
    fn slot(&mut self, partition: u32) -> &mut Vec<Record> {
        let index = partition as usize;
        if self.buffers.len() <= index {
            self.buffers.resize_with(index + 1, Vec::new);
            self.writers.resize_with(index + 1, || None);
        }
        &mut self.buffers[index]
    }
}

impl Producer {
    /// Creates a producer with default configuration.
    pub fn new(bus: impl Bus + 'static) -> Self {
        Self::with_config(bus, ProducerConfig::default())
    }

    /// Creates a producer with an explicit configuration.
    pub fn with_config(bus: impl Bus + 'static, config: ProducerConfig) -> Self {
        Producer {
            bus: Arc::new(bus),
            config,
            topics: Vec::new(),
            counters: ProducerCounters::default(),
            pacing_started: None,
            paced_records: 0,
            closed: false,
        }
    }

    /// The producer's configuration.
    pub fn config(&self) -> &ProducerConfig {
        &self.config
    }

    /// A timestamped copy of the current send counters.
    pub fn metrics(&self) -> ProducerMetricsSnapshot {
        ProducerMetricsSnapshot {
            at_unix_micros: obs::metrics::unix_micros(),
            sent: self.counters.sent.get(),
            dropped: self.counters.dropped.get(),
            flushes: self.counters.flushes.get(),
        }
    }

    fn pace(&mut self) {
        self.pace_many(1);
    }

    /// Advances the pacing clock by `count` records in one step: a batch
    /// sleeps once for its whole deficit instead of once per record.
    fn pace_many(&mut self, count: u64) {
        let Some(limit) = self.config.rate_limit else {
            return;
        };
        let started = *self.pacing_started.get_or_insert_with(Instant::now);
        self.paced_records += count;
        let due = Duration::from_secs_f64(self.paced_records as f64 / limit.records_per_second);
        let elapsed = started.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
    }

    /// Buffers one record for `topic`, flushing the target partition's
    /// buffer if it is full. Blocks to honour the rate limit, if any.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProducerClosed`] after [`Producer::close`];
    /// otherwise propagates bus errors (suppressed and counted as drops
    /// under `acks=0`).
    pub fn send(&mut self, topic: &str, record: Record) -> Result<()> {
        if self.closed {
            return Err(Error::ProducerClosed);
        }
        self.pace();
        let index = self.topic_index(topic);
        // Field-level borrows keep the `&str` topic lookup allocation-free.
        let state = &mut self.topics[index].state;
        let partitioner = self.config.partitioner;
        let picked = match partitioner {
            Partitioner::Fixed(p) => Ok(p),
            Partitioner::RoundRobin => next_round_robin(self.bus.as_ref(), state, topic),
            Partitioner::KeyHash => match &record.key {
                Some(key) => cached_partition_count(self.bus.as_ref(), state, topic)
                    .map(|n| partition_for_key(key, n)),
                None => next_round_robin(self.bus.as_ref(), state, topic),
            },
        };
        let partition = match picked {
            Ok(p) => p,
            Err(e) => return self.absorb(e),
        };
        let buffer = state.slot(partition);
        buffer.push(record);
        if buffer.len() >= self.config.batch_records {
            self.flush_partition(index, topic, partition)?;
        }
        Ok(())
    }

    /// Buffers a whole batch of records for `topic`, draining `records`
    /// (capacity kept for the caller to reuse).
    ///
    /// The closed check, pacing, and topic lookup are paid once per batch
    /// instead of once per record. With a [`Partitioner::Fixed`]
    /// partitioner (the benchmark sender's setup) records move in bulk
    /// `extend`s, flushing full buffers through the cached
    /// [`PartitionWriter`] as they fill; other partitioners route each
    /// record but still skip the per-record bookkeeping.
    ///
    /// # Errors
    ///
    /// Same as [`Producer::send`]. `records` is drained even when an
    /// error cuts the batch short.
    pub fn send_batch(&mut self, topic: &str, records: &mut Vec<Record>) -> Result<()> {
        if self.closed {
            return Err(Error::ProducerClosed);
        }
        if records.is_empty() {
            return Ok(());
        }
        self.pace_many(records.len() as u64);
        let index = self.topic_index(topic);
        if let Partitioner::Fixed(partition) = self.config.partitioner {
            let batch_records = self.config.batch_records;
            loop {
                let buffer = self.topics[index].state.slot(partition);
                let room = batch_records.saturating_sub(buffer.len()).max(1);
                let take = room.min(records.len());
                buffer.extend(records.drain(..take));
                if buffer.len() >= batch_records {
                    self.flush_partition(index, topic, partition)?;
                }
                if records.is_empty() {
                    return Ok(());
                }
            }
        }
        for record in records.drain(..) {
            let state = &mut self.topics[index].state;
            let picked = match self.config.partitioner {
                Partitioner::Fixed(p) => Ok(p),
                Partitioner::RoundRobin => next_round_robin(self.bus.as_ref(), state, topic),
                Partitioner::KeyHash => match &record.key {
                    Some(key) => cached_partition_count(self.bus.as_ref(), state, topic)
                        .map(|n| partition_for_key(key, n)),
                    None => next_round_robin(self.bus.as_ref(), state, topic),
                },
            };
            let partition = match picked {
                Ok(p) => p,
                Err(e) => {
                    self.absorb(e)?;
                    continue;
                }
            };
            let buffer = self.topics[index].state.slot(partition);
            buffer.push(record);
            if buffer.len() >= self.config.batch_records {
                self.flush_partition(index, topic, partition)?;
            }
        }
        Ok(())
    }

    /// Buffers a record for an explicit partition, bypassing the
    /// partitioner.
    ///
    /// # Errors
    ///
    /// Same as [`Producer::send`].
    pub fn send_to(&mut self, topic: &str, partition: u32, record: Record) -> Result<()> {
        if self.closed {
            return Err(Error::ProducerClosed);
        }
        self.pace();
        let index = self.topic_index(topic);
        let buffer = self.topics[index].state.slot(partition);
        buffer.push(record);
        if buffer.len() >= self.config.batch_records {
            self.flush_partition(index, topic, partition)?;
        }
        Ok(())
    }

    /// Index of the topic's entry, appending a fresh one on first use.
    fn topic_index(&mut self, topic: &str) -> usize {
        if let Some(index) = self.topics.iter().position(|entry| entry.name == topic) {
            return index;
        }
        self.topics.push(TopicEntry {
            name: topic.to_string(),
            state: TopicState::default(),
        });
        self.topics.len() - 1
    }

    /// Flushes partition `partition` of topic entry `index` through its
    /// cached writer, **draining the buffer in place** so its capacity
    /// is reused across the producer's whole lifetime (no `mem::take`,
    /// no fresh `Vec` per flush).
    fn flush_partition(&mut self, index: usize, topic: &str, partition: u32) -> Result<()> {
        let p = partition as usize;
        {
            let state = &self.topics[index].state;
            if state.buffers.len() <= p || state.buffers[p].is_empty() {
                return Ok(());
            }
        }
        self.counters.flushes.inc();
        let mirror = obs::enabled();
        if mirror {
            crate::telemetry::producer_totals().flushes.inc();
        }
        match self.produce_slot_cached(index, topic, partition) {
            Ok(len) => {
                self.counters.sent.add(len);
                if mirror {
                    crate::telemetry::producer_totals().sent.add(len);
                }
                Ok(())
            }
            Err(e) => {
                if self.config.acks == Acks::None {
                    // acks=0: the batch is dropped, not retried.
                    let buffer = &mut self.topics[index].state.buffers[p];
                    let len = buffer.len() as u64;
                    buffer.clear();
                    self.counters.dropped.add(len);
                    if mirror {
                        crate::telemetry::producer_totals().dropped.add(len);
                    }
                    Ok(())
                } else {
                    // The records stay buffered for the next flush.
                    Err(e)
                }
            }
        }
    }

    /// Appends the slot's buffered batch through the partition's cached
    /// writer, resolving (and caching) the handle on first use.
    /// Resolution is retried on every flush while it keeps failing, so
    /// records buffered before their topic exists still land once it is
    /// created — the same late-binding the per-call name lookup used to
    /// provide. Resolved writers are idempotent and retry transient
    /// faults under the configured [`RetryPolicy`](crate::RetryPolicy),
    /// so a lost ack never duplicates the batch in the log. Returns the
    /// number of records flushed.
    fn produce_slot_cached(&mut self, index: usize, topic: &str, partition: u32) -> Result<u64> {
        let state = &mut self.topics[index].state;
        let p = partition as usize;
        if state.writers.len() <= p {
            state.writers.resize_with(p + 1, || None);
        }
        if state.writers[p].is_none() {
            let retry = &self.config.retry;
            let bus = self.bus.as_ref();
            let writer =
                crate::retry::with_retry(retry, || bus.partition_writer(topic, partition))?
                    .idempotent()
                    .with_acks(self.config.acks)
                    .with_retry(retry.clone());
            state.writers[p] = Some(writer);
        }
        let Some(writer) = state.writers[p].as_ref() else {
            return Err(Error::BrokerUnavailable);
        };
        let buffer = &mut state.buffers[p];
        let len = buffer.len() as u64;
        writer.produce_batch_drain(buffer)?;
        Ok(len)
    }

    fn absorb(&mut self, e: Error) -> Result<()> {
        if self.config.acks == Acks::None {
            self.counters.dropped.inc();
            if obs::enabled() {
                crate::telemetry::producer_totals().dropped.inc();
            }
            Ok(())
        } else {
            Err(e)
        }
    }

    /// Flushes all buffered records.
    ///
    /// # Errors
    ///
    /// Propagates the first bus error (unless `acks=0`).
    pub fn flush(&mut self) -> Result<()> {
        for i in 0..self.topics.len() {
            let topic = self.topics[i].name.clone();
            let partitions = self.topics[i].state.buffers.len();
            for p in 0..partitions {
                self.flush_partition(i, &topic, p as u32)?;
            }
        }
        Ok(())
    }

    /// Flushes and permanently closes the producer.
    ///
    /// # Errors
    ///
    /// Propagates flush errors; the producer is closed regardless.
    pub fn close(&mut self) -> Result<()> {
        let result = self.flush();
        self.closed = true;
        result
    }
}

/// Routes a record key to a partition: the shared key-hash partitioner.
///
/// Every producer tier (per-record [`Producer::send`], batched
/// [`Producer::send_batch`]) and the benchmark's parallel load
/// generators call this one function, so a key always lands on the same
/// partition no matter which path produced it — the property keyed
/// engine shuffles depend on.
#[must_use]
pub fn partition_for_key(key: &[u8], partition_count: u32) -> u32 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % u64::from(partition_count.max(1))) as u32
}

/// Returns the topic's partition count, caching it in `state` on the
/// first successful query (failures are not cached, so a topic created
/// later is still picked up).
fn cached_partition_count(bus: &dyn Bus, state: &mut TopicState, topic: &str) -> Result<u32> {
    match state.partition_count {
        Some(n) => Ok(n),
        None => {
            let n = bus.partition_count(topic)?;
            state.partition_count = Some(n);
            Ok(n)
        }
    }
}

/// Advances the topic's round-robin cursor and returns the next partition.
fn next_round_robin(bus: &dyn Bus, state: &mut TopicState, topic: &str) -> Result<u32> {
    let n = cached_partition_count(bus, state, topic)?;
    let partition = state.round_robin % n;
    state.round_robin = state.round_robin.wrapping_add(1);
    Ok(partition)
}

impl Drop for Producer {
    fn drop(&mut self) {
        // Best-effort flush; errors are intentionally ignored in drop
        // (C-DTOR-FAIL). Call `close` to observe them.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crate::config::TopicConfig;

    fn broker_with(partitions: u32) -> Broker {
        let broker = Broker::new();
        broker
            .create_topic("t", TopicConfig::default().partitions(partitions))
            .unwrap();
        broker
    }

    #[test]
    fn batches_flush_when_full() {
        let broker = broker_with(1);
        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig {
                batch_records: 10,
                ..ProducerConfig::default()
            },
        );
        for i in 0..25 {
            producer
                .send("t", Record::from_value(format!("{i}")))
                .unwrap();
        }
        // Two automatic flushes of 10; 5 still buffered.
        assert_eq!(broker.latest_offset("t", 0).unwrap(), 20);
        producer.flush().unwrap();
        assert_eq!(broker.latest_offset("t", 0).unwrap(), 25);
        assert_eq!(producer.metrics().sent, 25);
    }

    #[test]
    fn send_batch_flushes_full_buffers_in_order() {
        let broker = broker_with(1);
        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig {
                batch_records: 10,
                partitioner: Partitioner::Fixed(0),
                ..ProducerConfig::default()
            },
        );
        let mut batch: Vec<Record> = (0..25)
            .map(|i| Record::from_value(format!("{i}")))
            .collect();
        producer.send_batch("t", &mut batch).unwrap();
        assert!(batch.is_empty(), "the batch must be drained");
        assert_eq!(
            broker.latest_offset("t", 0).unwrap(),
            20,
            "two automatic flushes of 10; 5 still buffered"
        );
        producer.flush().unwrap();
        let records = broker.fetch("t", 0, 0, 25).unwrap();
        assert_eq!(records.len(), 25);
        for (i, stored) in records.iter().enumerate() {
            assert_eq!(&stored.record.value[..], format!("{i}").as_bytes());
        }
    }

    #[test]
    fn send_batch_round_robin_spreads() {
        let broker = broker_with(4);
        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig {
                batch_records: 1,
                ..ProducerConfig::default()
            },
        );
        let mut batch: Vec<Record> = (0..8).map(|i| Record::from_value(format!("{i}"))).collect();
        producer.send_batch("t", &mut batch).unwrap();
        for p in 0..4 {
            assert_eq!(broker.latest_offset("t", p).unwrap(), 2, "partition {p}");
        }
    }

    #[test]
    fn send_batch_matches_per_record_sends() {
        let per_record = broker_with(1);
        let batched = broker_with(1);
        let config = || ProducerConfig {
            batch_records: 7,
            partitioner: Partitioner::Fixed(0),
            ..ProducerConfig::default()
        };
        let mut a = Producer::with_config(per_record.clone(), config());
        for i in 0..50 {
            a.send("t", Record::from_value(format!("{i}"))).unwrap();
        }
        a.close().unwrap();
        let mut b = Producer::with_config(batched.clone(), config());
        let mut chunk = Vec::new();
        for i in 0..50 {
            chunk.push(Record::from_value(format!("{i}")));
            if chunk.len() == 13 {
                b.send_batch("t", &mut chunk).unwrap();
            }
        }
        b.send_batch("t", &mut chunk).unwrap();
        b.close().unwrap();
        let left = per_record.fetch("t", 0, 0, 50).unwrap();
        let right = batched.fetch("t", 0, 0, 50).unwrap();
        assert_eq!(left.len(), right.len());
        for (l, r) in left.iter().zip(right.iter()) {
            assert_eq!(l.record.value, r.record.value);
        }
    }

    #[test]
    fn send_batch_on_closed_producer_errors() {
        let broker = broker_with(1);
        let mut producer = Producer::new(broker);
        producer.close().unwrap();
        let mut batch = vec![Record::from_value("x")];
        assert_eq!(
            producer.send_batch("t", &mut batch),
            Err(Error::ProducerClosed)
        );
    }

    #[test]
    fn drop_flushes() {
        let broker = broker_with(1);
        {
            let mut producer = Producer::new(broker.clone());
            producer.send("t", Record::from_value("x")).unwrap();
        }
        assert_eq!(broker.latest_offset("t", 0).unwrap(), 1);
    }

    #[test]
    fn round_robin_spreads() {
        let broker = broker_with(4);
        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig {
                batch_records: 1,
                ..ProducerConfig::default()
            },
        );
        for i in 0..8 {
            producer
                .send("t", Record::from_value(format!("{i}")))
                .unwrap();
        }
        for p in 0..4 {
            assert_eq!(broker.latest_offset("t", p).unwrap(), 2, "partition {p}");
        }
    }

    #[test]
    fn key_hash_is_sticky() {
        let broker = broker_with(4);
        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig {
                batch_records: 1,
                partitioner: Partitioner::KeyHash,
                ..ProducerConfig::default()
            },
        );
        for _ in 0..10 {
            producer
                .send("t", Record::from_key_value("stable", "v"))
                .unwrap();
        }
        let populated: Vec<u32> = (0..4)
            .filter(|&p| broker.latest_offset("t", p).unwrap() > 0)
            .collect();
        assert_eq!(
            populated.len(),
            1,
            "all records should land on one partition"
        );
        assert_eq!(broker.latest_offset("t", populated[0]).unwrap(), 10);
    }

    #[test]
    fn fixed_partitioner() {
        let broker = broker_with(3);
        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig {
                partitioner: Partitioner::Fixed(2),
                ..ProducerConfig::default()
            },
        );
        producer.send("t", Record::from_value("x")).unwrap();
        producer.flush().unwrap();
        assert_eq!(broker.latest_offset("t", 2).unwrap(), 1);
        assert_eq!(broker.latest_offset("t", 0).unwrap(), 0);
    }

    #[test]
    fn acks_none_swallows_errors() {
        let broker = Broker::new(); // no topic created
        let mut producer = Producer::with_config(
            broker,
            ProducerConfig {
                acks: Acks::None,
                batch_records: 1,
                partitioner: Partitioner::Fixed(0),
                ..ProducerConfig::default()
            },
        );
        producer.send("missing", Record::from_value("x")).unwrap();
        producer.flush().unwrap();
        assert_eq!(producer.metrics().dropped, 1);
        assert_eq!(producer.metrics().sent, 0);
    }

    #[test]
    fn acks_leader_propagates_errors() {
        let broker = Broker::new();
        let mut producer = Producer::with_config(
            broker,
            ProducerConfig {
                batch_records: 1,
                partitioner: Partitioner::Fixed(0),
                ..ProducerConfig::default()
            },
        );
        assert!(producer.send("missing", Record::from_value("x")).is_err());
    }

    #[test]
    fn closed_producer_rejects_sends() {
        let broker = broker_with(1);
        let mut producer = Producer::new(broker);
        producer.close().unwrap();
        assert_eq!(
            producer.send("t", Record::from_value("x")),
            Err(Error::ProducerClosed)
        );
    }

    #[test]
    fn rate_limit_paces_sends() {
        let broker = broker_with(1);
        let mut producer = Producer::with_config(
            broker,
            ProducerConfig {
                rate_limit: Some(RateLimit::per_second(1_000.0)),
                ..ProducerConfig::default()
            },
        );
        let start = Instant::now();
        for i in 0..50 {
            producer
                .send("t", Record::from_value(format!("{i}")))
                .unwrap();
        }
        // 50 records at 1000/s should take >= ~50ms.
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = RateLimit::per_second(0.0);
    }

    #[test]
    fn faulted_broker_gets_exactly_once_batches() {
        let broker = broker_with(1);
        let mut plan = crate::FaultPlan::seeded(47);
        plan.produce_error = 0.3;
        plan.ack_loss = 0.3;
        plan.duplicate = 0.0;
        plan.fetch_error = 0.0;
        plan.metadata_error = 0.3;
        plan.extra_latency = 0.0;
        broker.install_fault_plan(plan);
        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig {
                batch_records: 8,
                partitioner: Partitioner::Fixed(0),
                ..ProducerConfig::default()
            },
        );
        for i in 0..300 {
            producer
                .send("t", Record::from_value(format!("{i}")))
                .unwrap();
        }
        producer.close().unwrap();
        broker.clear_fault_plan();
        let records = broker.fetch("t", 0, 0, 1_000).unwrap();
        assert_eq!(records.len(), 300, "idempotent writers dedup lost acks");
        for (i, stored) in records.iter().enumerate() {
            assert_eq!(&stored.record.value[..], format!("{i}").as_bytes());
        }
    }

    #[test]
    fn metrics_snapshot_is_point_in_time() {
        let broker = broker_with(1);
        let mut producer = Producer::new(broker);
        producer.send("t", Record::from_value("x")).unwrap();
        let before = producer.metrics();
        assert_eq!(before.sent, 0, "nothing flushed yet");
        assert!(before.at_unix_micros > 0);
        producer.flush().unwrap();
        let after = producer.metrics();
        assert_eq!(after.sent, 1);
        assert_eq!(after.flushes, 1);
        // The old Copy struct hid staleness; the timestamp exposes it.
        assert!(after.at_unix_micros >= before.at_unix_micros);
        assert_eq!(before.sent, 0, "snapshots never update in place");
    }
}
