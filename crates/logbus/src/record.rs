//! Record types: what producers send and what the log stores.

use bytes::Bytes;
use std::fmt;

/// A broker timestamp in microseconds since the Unix epoch.
///
/// Microsecond resolution (rather than Kafka's milliseconds) keeps the
/// benchmark's `LogAppendTime`-based execution-time measurement meaningful
/// for the small, scaled-down workloads used in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Creates a timestamp from microseconds since the Unix epoch.
    pub fn from_micros(micros: i64) -> Self {
        Timestamp(micros)
    }

    /// Returns the timestamp as microseconds since the Unix epoch.
    pub fn as_micros(self) -> i64 {
        self.0
    }

    /// Returns the timestamp as (truncated) milliseconds since the epoch.
    pub fn as_millis(self) -> i64 {
        self.0 / 1_000
    }

    /// Returns the duration between `self` and an earlier timestamp, in
    /// seconds.
    ///
    /// Negative results are possible when `earlier` is actually later; the
    /// result calculator relies on this to detect mis-ordered topics.
    pub fn seconds_since(self, earlier: Timestamp) -> f64 {
        (self.0 - earlier.0) as f64 / 1_000_000.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl From<i64> for Timestamp {
    fn from(micros: i64) -> Self {
        Timestamp(micros)
    }
}

/// An application-defined key/value header attached to a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Header key.
    pub key: String,
    /// Header value (opaque bytes).
    pub value: Bytes,
}

impl Header {
    /// Creates a header from a key and any byte-like value.
    pub fn new(key: impl Into<String>, value: impl Into<Bytes>) -> Self {
        Header {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// A record as handed to a [`Producer`](crate::Producer).
///
/// Records are cheap to clone: key and value are reference-counted
/// [`Bytes`]. Construction from owned data (`Vec<u8>`, `String`,
/// `Bytes`) is zero-copy — the `Bytes` shim takes over the allocation
/// rather than copying it — so only the borrowed [`From<&str>`]
/// conversion pays a copy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    /// Optional partitioning key.
    pub key: Option<Bytes>,
    /// Record payload.
    pub value: Bytes,
    /// Producer-assigned creation timestamp. Ignored (overwritten on
    /// append) when the topic uses
    /// [`TimestampType::LogAppendTime`](crate::TimestampType::LogAppendTime).
    pub timestamp: Option<Timestamp>,
    /// Optional headers.
    pub headers: Vec<Header>,
}

impl Record {
    /// Creates a record with a value and no key.
    ///
    /// ```
    /// let r = logbus::Record::from_value("payload");
    /// assert!(r.key.is_none());
    /// ```
    pub fn from_value(value: impl Into<Bytes>) -> Self {
        Record {
            key: None,
            value: value.into(),
            timestamp: None,
            headers: Vec::new(),
        }
    }

    /// Creates a record with both key and value.
    pub fn from_key_value(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Record {
            key: Some(key.into()),
            value: value.into(),
            timestamp: None,
            headers: Vec::new(),
        }
    }

    /// Sets the producer-side creation timestamp.
    pub fn with_timestamp(mut self, ts: Timestamp) -> Self {
        self.timestamp = Some(ts);
        self
    }

    /// Appends a header.
    pub fn with_header(mut self, header: Header) -> Self {
        self.headers.push(header);
        self
    }

    /// Approximate wire size of the record in bytes, used for segment
    /// rolling and batch-size accounting.
    pub fn wire_size(&self) -> usize {
        const RECORD_OVERHEAD: usize = 24; // offset + timestamp + lengths
        let headers: usize = self
            .headers
            .iter()
            .map(|h| h.key.len() + h.value.len() + 8)
            .sum();
        RECORD_OVERHEAD
            + self.key.as_ref().map_or(0, bytes::Bytes::len)
            + self.value.len()
            + headers
    }
}

impl From<&str> for Record {
    /// Copies: the source is borrowed. Prefer `From<String>` /
    /// `From<Bytes>` on hot paths — those never copy.
    fn from(value: &str) -> Self {
        Record::from_value(Bytes::copy_from_slice(value.as_bytes()))
    }
}

impl From<String> for Record {
    /// Zero-copy: the `String`'s allocation becomes the record value.
    fn from(value: String) -> Self {
        Record::from_value(Bytes::from(value))
    }
}

impl From<Bytes> for Record {
    fn from(value: Bytes) -> Self {
        Record::from_value(value)
    }
}

/// A record as stored in (and fetched from) a partition log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// Position of the record within its partition.
    pub offset: u64,
    /// The timestamp stored with the record. Depending on the topic's
    /// [`TimestampType`](crate::TimestampType) this is either the producer's
    /// `CreateTime` or the broker's `LogAppendTime`.
    pub timestamp: Timestamp,
    /// The record content.
    pub record: Record,
}

impl StoredRecord {
    /// Borrows the record value.
    pub fn value(&self) -> &Bytes {
        &self.record.value
    }

    /// Borrows the record key, if any.
    pub fn key(&self) -> Option<&Bytes> {
        self.record.key.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_conversions() {
        let ts = Timestamp::from_micros(1_500_000);
        assert_eq!(ts.as_micros(), 1_500_000);
        assert_eq!(ts.as_millis(), 1_500);
        assert_eq!(ts.to_string(), "1500000us");
    }

    #[test]
    fn timestamp_seconds_since() {
        let a = Timestamp::from_micros(1_000_000);
        let b = Timestamp::from_micros(3_500_000);
        assert!((b.seconds_since(a) - 2.5).abs() < 1e-9);
        assert!((a.seconds_since(b) + 2.5).abs() < 1e-9);
    }

    #[test]
    fn record_constructors() {
        let r = Record::from_value("v");
        assert_eq!(&r.value[..], b"v");
        assert!(r.key.is_none());

        let r = Record::from_key_value("k", "v");
        assert_eq!(r.key.as_deref(), Some(&b"k"[..]));

        let r = Record::from_value("v")
            .with_timestamp(Timestamp(42))
            .with_header(Header::new("h", "x"));
        assert_eq!(r.timestamp, Some(Timestamp(42)));
        assert_eq!(r.headers.len(), 1);
    }

    #[test]
    fn wire_size_accounts_for_all_parts() {
        let bare = Record::from_value("").wire_size();
        let with_value = Record::from_value("abcd").wire_size();
        assert_eq!(with_value, bare + 4);

        let with_key = Record::from_key_value("kk", "abcd").wire_size();
        assert_eq!(with_key, with_value + 2);

        let with_header = Record::from_key_value("kk", "abcd")
            .with_header(Header::new("h", "vv"))
            .wire_size();
        assert_eq!(with_header, with_key + 1 + 2 + 8);
    }

    #[test]
    fn owned_construction_is_zero_copy() {
        let v = vec![1u8; 16];
        let ptr = v.as_ptr();
        let r = Record::from_value(v);
        assert_eq!(r.value.as_ptr(), ptr, "Vec allocation must be taken over");

        let s = String::from("zero-copy-string");
        let ptr = s.as_ptr();
        let r: Record = s.into();
        assert_eq!(
            r.value.as_ptr(),
            ptr,
            "String allocation must be taken over"
        );
    }

    #[test]
    fn record_from_impls() {
        let a: Record = "x".into();
        let b: Record = String::from("x").into();
        let c: Record = Bytes::from_static(b"x").into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
