//! Bounded retries with exponential backoff and deterministic jitter.
//!
//! Every client tier — [`Producer`](crate::Producer),
//! [`AsyncProducer`](crate::AsyncProducer), [`Consumer`](crate::Consumer),
//! and the cached [`PartitionWriter`](crate::PartitionWriter) /
//! [`PartitionReader`](crate::PartitionReader) handles — retries
//! *transient* errors (see [`Error::is_transient`]) under a
//! [`RetryPolicy`]: capped attempt count, capped wall-clock budget,
//! exponential backoff with jitter drawn from the seeded RNG shim so a
//! fault-plan replay backs off identically. Non-transient errors are
//! returned immediately; an exhausted budget surfaces as
//! [`Error::RetriesExhausted`].

use crate::error::{Error, Result};
use crate::topic::spin_delay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Retry schedule for one client call.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a policy does nothing until passed to a client or `with_retry`"]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock budget for the whole call, attempts plus backoffs.
    pub timeout: Duration,
    /// Seed for backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Eight retries, 40µs–2ms backoff, a 250ms call budget: generous
    /// against any bounded [`FaultPlan`](crate::FaultPlan) (which forces
    /// success after `max_consecutive` faults) yet quick to give up on a
    /// genuinely dead broker.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_micros(40),
            max_backoff: Duration::from_millis(2),
            timeout: Duration::from_millis(250),
            seed: 2019,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the first error is final).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            timeout: Duration::from_secs(3600),
            seed: 0,
        }
    }

    /// Backoff for `attempt` (0-based): `base * 2^attempt`, capped at
    /// `max_backoff`, jittered to 50–150% from the policy seed.
    pub(crate) fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let base = self.base_backoff.as_micros() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min(self.max_backoff.as_micros() as u64).max(1);
        let jittered = capped / 2 + rng.gen_range(0..=capped);
        Duration::from_micros(jittered)
    }
}

/// Per-call retry bookkeeping: attempt count, wall-clock budget, and the
/// lazily seeded jitter stream. Lets callers that must recover state
/// between attempts (e.g. a produce retry taking its records back) run
/// the same loop [`with_retry`] does.
#[derive(Debug)]
pub(crate) struct RetryState {
    attempt: u32,
    first_failure: Option<Instant>,
    rng: Option<StdRng>,
}

impl RetryState {
    pub(crate) fn new() -> Self {
        RetryState {
            attempt: 0,
            first_failure: None,
            rng: None,
        }
    }

    /// Marks the call's eventual success (counts the recovery if any
    /// retries happened).
    pub(crate) fn note_success(&self) {
        if self.attempt > 0 && obs::enabled() {
            crate::telemetry::retry_path().recoveries.add(1);
        }
    }

    /// Handles one failed attempt: propagates non-transient errors
    /// untouched, converts a spent budget into
    /// [`Error::RetriesExhausted`], and otherwise backs off (busy-wait,
    /// like the simulated network round trips) so the caller can retry.
    pub(crate) fn backoff_or_give_up(&mut self, policy: &RetryPolicy, error: Error) -> Result<()> {
        if !error.is_transient() {
            return Err(error);
        }
        let started = *self.first_failure.get_or_insert_with(Instant::now);
        let timed_out = started.elapsed() >= policy.timeout;
        if self.attempt >= policy.max_retries || timed_out {
            if obs::enabled() {
                let path = crate::telemetry::retry_path();
                if timed_out {
                    path.timeouts.add(1);
                }
                path.give_ups.add(1);
            }
            return Err(Error::RetriesExhausted {
                attempts: self.attempt + 1,
                last: Box::new(error),
            });
        }
        if obs::enabled() {
            crate::telemetry::retry_path().attempts.add(1);
        }
        let rng = self
            .rng
            .get_or_insert_with(|| StdRng::seed_from_u64(policy.seed));
        spin_delay(policy.backoff(self.attempt, rng));
        self.attempt += 1;
        Ok(())
    }
}

/// Runs `op`, retrying transient errors under `policy`.
///
/// The backoff is busy-waited (like the simulated network round trips),
/// so microsecond-scale backoffs stay microsecond-scale. Retry attempts,
/// timeouts, and give-ups are counted through the `obs` registry when
/// instrumentation is enabled.
///
/// # Errors
///
/// Returns the first non-transient error as-is, or
/// [`Error::RetriesExhausted`] once the attempt or time budget is spent.
pub fn with_retry<T>(policy: &RetryPolicy, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut state = RetryState::new();
    loop {
        match op() {
            Ok(value) => {
                state.note_success();
                return Ok(value);
            }
            Err(error) => state.backoff_or_give_up(policy, error)?,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_costs_nothing_extra() {
        let policy = RetryPolicy::default();
        let result = with_retry(&policy, || Ok::<_, Error>(42));
        assert_eq!(result.unwrap(), 42);
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let policy = RetryPolicy::default();
        let mut failures = 3;
        let result = with_retry(&policy, || {
            if failures > 0 {
                failures -= 1;
                Err(Error::BrokerUnavailable)
            } else {
                Ok("ok")
            }
        });
        assert_eq!(result.unwrap(), "ok");
    }

    #[test]
    fn non_transient_errors_fail_fast() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let result: Result<()> = with_retry(&policy, || {
            calls += 1;
            Err(Error::UnknownTopic("t".into()))
        });
        assert_eq!(result, Err(Error::UnknownTopic("t".into())));
        assert_eq!(calls, 1);
    }

    #[test]
    fn budget_exhaustion_reports_attempts_and_cause() {
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let result: Result<()> = with_retry(&policy, || Err(Error::RequestTimedOut));
        match result {
            Err(Error::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert_eq!(*last, Error::RequestTimedOut);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn never_retry_policy_gives_up_immediately() {
        let mut calls = 0;
        let result: Result<()> = with_retry(&RetryPolicy::none(), || {
            calls += 1;
            Err(Error::BrokerUnavailable)
        });
        assert!(matches!(
            result,
            Err(Error::RetriesExhausted { attempts: 1, .. })
        ));
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_is_bounded_and_grows() {
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let early = policy.backoff(0, &mut rng);
        let late = policy.backoff(10, &mut rng);
        assert!(early <= policy.max_backoff + policy.max_backoff / 2);
        assert!(late <= policy.max_backoff + policy.max_backoff / 2);
        assert!(late >= policy.max_backoff / 2);
    }
}
