//! Log segments: contiguous runs of records within a partition log.

use crate::pool;
use crate::record::{StoredRecord, Timestamp};
use bytes::{Bytes, BytesMut};

/// Arena chunk size: appended payloads pack into contiguous refcounted
/// chunks of this size, so per-record storage costs one `memcpy` and
/// zero allocations in steady state (chunks recycle through the `bytes`
/// shim's free-list once the segment and all fetched views drop).
const ARENA_CHUNK: usize = 64 << 10;

/// Payloads larger than this spill: the segment keeps the producer's
/// refcounted buffer as-is instead of copying it into the arena, so one
/// jumbo record cannot blow up arena chunk sizing.
const ARENA_SPILL: usize = 16 << 10;

/// A contiguous, append-only run of records starting at `base_offset`.
///
/// Partition logs are divided into segments (as in Kafka) so that retention
/// can drop whole segments cheaply and so that offset lookups stay fast on
/// long logs.
///
/// Each segment owns an arena of refcounted byte chunks: appended record
/// keys and values are packed into the arena and stored as zero-copy
/// [`Bytes`] views of it, so fetches hand out slices of segment storage
/// without copying — the zero-copy fetch contract (DESIGN.md §12).
#[derive(Debug, Default)]
pub struct Segment {
    base_offset: u64,
    records: Vec<StoredRecord>,
    arena: BytesMut,
    bytes: usize,
}

impl Segment {
    /// Creates an empty segment whose first record will get `base_offset`.
    /// The record index comes from the pool tier; arena chunks are
    /// acquired lazily on first append.
    pub fn new(base_offset: u64) -> Self {
        Segment {
            base_offset,
            records: pool::stored_vec(),
            arena: BytesMut::new(),
            bytes: 0,
        }
    }

    /// Packs `data` into the segment arena, returning a zero-copy view.
    /// Static and oversize payloads pass through untouched.
    fn pack(&mut self, data: Bytes) -> Bytes {
        if data.is_empty() || data.is_static() || data.len() > ARENA_SPILL {
            return data;
        }
        if self.arena.capacity() < data.len() {
            // Roll to a fresh pooled chunk; views into the old chunk keep
            // it alive, and it recycles when the last of them drops.
            self.arena = BytesMut::with_capacity(ARENA_CHUNK);
        }
        self.arena.pack(&data)
    }

    /// Tears the segment down, returning its record index to the pool.
    /// Arena chunks recycle on their own once every fetched view drops.
    pub fn recycle(mut self) {
        pool::recycle_stored_vec(std::mem::take(&mut self.records));
    }

    /// Offset of the first record (present or future) in this segment.
    pub fn base_offset(&self) -> u64 {
        self.base_offset
    }

    /// Offset one past the last stored record.
    pub fn next_offset(&self) -> u64 {
        self.base_offset + self.records.len() as u64
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Accumulated wire size of the stored records.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if the record's offset is not exactly [`next_offset`]; the
    /// partition log maintains this invariant.
    ///
    /// [`next_offset`]: Segment::next_offset
    pub fn append(&mut self, mut record: StoredRecord) {
        assert_eq!(
            record.offset,
            self.next_offset(),
            "segment append must be contiguous"
        );
        self.bytes += record.record.wire_size();
        // Pack payloads into the arena: the producer's buffer can be
        // recycled immediately while fetches serve refcounted views of
        // contiguous segment storage.
        record.record.value = self.pack(record.record.value);
        if let Some(key) = record.record.key.take() {
            record.record.key = Some(self.pack(key));
        }
        self.records.push(record);
    }

    /// Returns the record at `offset`, if it lies within this segment.
    pub fn get(&self, offset: u64) -> Option<&StoredRecord> {
        if offset < self.base_offset {
            return None;
        }
        self.records.get((offset - self.base_offset) as usize)
    }

    /// Whether `offset` falls inside this segment's stored range.
    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.base_offset && offset < self.next_offset()
    }

    /// Returns up to `max` records starting at `offset` (which must lie in
    /// this segment or past its end, in which case the slice is empty).
    pub fn read_from(&self, offset: u64, max: usize) -> &[StoredRecord] {
        if offset >= self.next_offset() || offset < self.base_offset {
            return &[];
        }
        let start = (offset - self.base_offset) as usize;
        let end = start.saturating_add(max).min(self.records.len());
        &self.records[start..end]
    }

    /// Drops every record at or past `offset` (log-divergence truncation
    /// after a leader change). No-op when `offset` is past the end.
    pub fn truncate_to(&mut self, offset: u64) {
        if offset >= self.next_offset() {
            return;
        }
        let keep = offset.saturating_sub(self.base_offset) as usize;
        for dropped in self.records.drain(keep..) {
            self.bytes -= dropped.record.wire_size();
        }
    }

    /// Timestamp of the first record, if any.
    pub fn first_timestamp(&self) -> Option<Timestamp> {
        self.records.first().map(|r| r.timestamp)
    }

    /// Timestamp of the last record, if any.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.records.last().map(|r| r.timestamp)
    }

    /// Iterates over the stored records.
    pub fn iter(&self) -> std::slice::Iter<'_, StoredRecord> {
        self.records.iter()
    }
}

impl<'a> IntoIterator for &'a Segment {
    type Item = &'a StoredRecord;
    type IntoIter = std::slice::Iter<'a, StoredRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn stored(offset: u64, ts: i64, value: &str) -> StoredRecord {
        StoredRecord {
            offset,
            timestamp: Timestamp::from_micros(ts),
            record: Record::from_value(value.as_bytes().to_vec()),
        }
    }

    #[test]
    fn append_and_read() {
        let mut seg = Segment::new(10);
        assert!(seg.is_empty());
        seg.append(stored(10, 1, "a"));
        seg.append(stored(11, 2, "b"));
        seg.append(stored(12, 3, "c"));
        assert_eq!(seg.len(), 3);
        assert_eq!(seg.base_offset(), 10);
        assert_eq!(seg.next_offset(), 13);
        assert!(seg.contains(11));
        assert!(!seg.contains(13));
        assert_eq!(seg.get(11).unwrap().value()[..], b"b"[..]);
        assert!(seg.get(9).is_none());
        assert!(seg.get(13).is_none());
    }

    #[test]
    fn read_from_slices() {
        let mut seg = Segment::new(0);
        for i in 0..5 {
            seg.append(stored(i, i as i64, "x"));
        }
        assert_eq!(seg.read_from(2, 2).len(), 2);
        assert_eq!(seg.read_from(2, 100).len(), 3);
        assert!(seg.read_from(5, 10).is_empty());
        assert_eq!(seg.read_from(0, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_append_panics() {
        let mut seg = Segment::new(0);
        seg.append(stored(1, 1, "a"));
    }

    #[test]
    fn timestamps_and_bytes() {
        let mut seg = Segment::new(0);
        assert!(seg.first_timestamp().is_none());
        seg.append(stored(0, 5, "aa"));
        seg.append(stored(1, 9, "bbb"));
        assert_eq!(seg.first_timestamp().unwrap().as_micros(), 5);
        assert_eq!(seg.last_timestamp().unwrap().as_micros(), 9);
        assert_eq!(
            seg.bytes(),
            Record::from_value("aa").wire_size() + Record::from_value("bbb").wire_size()
        );
    }

    #[test]
    fn arena_packs_values_contiguously() {
        let mut seg = Segment::new(0);
        seg.append(stored(0, 1, "alpha"));
        seg.append(stored(1, 2, "beta"));
        let a = seg.get(0).unwrap().value();
        let b = seg.get(1).unwrap().value();
        assert_eq!(&a[..], b"alpha");
        assert_eq!(&b[..], b"beta");
        // Both payloads live back-to-back in one arena chunk.
        assert_eq!(a.as_ptr() as usize + a.len(), b.as_ptr() as usize);
    }

    #[test]
    fn arena_packs_keys_too() {
        let mut seg = Segment::new(0);
        seg.append(StoredRecord {
            offset: 0,
            timestamp: Timestamp::from_micros(1),
            record: Record::from_key_value(b"key".to_vec(), b"value".to_vec()),
        });
        let rec = seg.get(0).unwrap();
        assert_eq!(&rec.key().unwrap()[..], b"key");
        // Value packs first, then key: both land in the same chunk.
        assert_eq!(
            rec.value().as_ptr() as usize + rec.value().len(),
            rec.key().unwrap().as_ptr() as usize,
            "key and value pack into the same chunk"
        );
    }

    #[test]
    fn oversize_payloads_spill_without_copy() {
        let big = vec![7u8; super::ARENA_SPILL + 1];
        let bytes = bytes::Bytes::from(big);
        let ptr = bytes.as_ptr();
        let mut seg = Segment::new(0);
        seg.append(StoredRecord {
            offset: 0,
            timestamp: Timestamp::from_micros(1),
            record: Record::from_value(bytes),
        });
        assert_eq!(seg.get(0).unwrap().value().as_ptr(), ptr, "no copy");
    }

    #[test]
    fn static_payloads_pass_through() {
        let mut seg = Segment::new(0);
        seg.append(StoredRecord {
            offset: 0,
            timestamp: Timestamp::from_micros(1),
            record: Record::from_value(bytes::Bytes::from_static(b"static")),
        });
        assert!(seg.get(0).unwrap().value().is_static());
    }

    #[test]
    fn fetched_views_survive_segment_recycle() {
        let mut seg = Segment::new(0);
        seg.append(stored(0, 1, "survivor"));
        let view = seg.get(0).unwrap().value().clone();
        seg.recycle();
        assert_eq!(&view[..], b"survivor");
    }

    #[test]
    fn truncate_drops_tail_and_bytes() {
        let mut seg = Segment::new(10);
        seg.append(stored(10, 1, "a"));
        seg.append(stored(11, 2, "bb"));
        seg.append(stored(12, 3, "ccc"));
        let full = seg.bytes();
        seg.truncate_to(11);
        assert_eq!(seg.len(), 1);
        assert_eq!(seg.next_offset(), 11);
        assert!(seg.bytes() < full);
        assert_eq!(seg.bytes(), Record::from_value("a").wire_size());
        // Truncating past the end is a no-op; truncating to the base
        // empties the segment.
        seg.truncate_to(100);
        assert_eq!(seg.len(), 1);
        seg.truncate_to(10);
        assert!(seg.is_empty());
        assert_eq!(seg.bytes(), 0);
    }

    #[test]
    fn iteration() {
        let mut seg = Segment::new(0);
        seg.append(stored(0, 1, "a"));
        seg.append(stored(1, 2, "b"));
        let values: Vec<_> = (&seg).into_iter().map(|r| r.offset).collect();
        assert_eq!(values, vec![0, 1]);
        assert_eq!(seg.iter().count(), 2);
    }
}
