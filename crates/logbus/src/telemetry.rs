//! Cached broker-path instruments.
//!
//! Both the named broker methods and the cached partition handles report
//! into the same global instruments, so a produce costs the same
//! telemetry no matter which path it took. Handles are resolved once per
//! process into statics: a hot-path call while instrumentation is
//! enabled pays only the atomic adds of the instruments themselves, and
//! while disabled only the `obs::enabled()` branch at the call site.

use std::sync::OnceLock;

/// Instruments on the produce path (named and handle-based).
pub(crate) struct ProducePath {
    /// End-to-end append latency, including the simulated round trip.
    pub(crate) latency_micros: obs::Histogram,
    /// Records per broker-side append.
    pub(crate) batch_records: obs::Histogram,
    /// Total records successfully appended.
    pub(crate) records: obs::Counter,
}

pub(crate) fn produce_path() -> &'static ProducePath {
    static PATH: OnceLock<ProducePath> = OnceLock::new();
    PATH.get_or_init(|| ProducePath {
        latency_micros: obs::histogram("logbus.produce.micros"),
        batch_records: obs::histogram("logbus.produce.batch_records"),
        records: obs::counter("logbus.produce.records"),
    })
}

impl ProducePath {
    /// Records one append of `records` records taking `elapsed`.
    pub(crate) fn observe(&self, records: u64, elapsed: std::time::Duration, ok: bool) {
        self.latency_micros.record(elapsed.as_micros() as u64);
        self.batch_records.record(records);
        if ok {
            self.records.add(records);
        }
    }
}

/// Instruments on the fetch path (named and handle-based).
pub(crate) struct FetchPath {
    /// End-to-end fetch latency, including the simulated round trip.
    pub(crate) latency_micros: obs::Histogram,
    /// Total records returned to fetchers.
    pub(crate) records: obs::Counter,
}

pub(crate) fn fetch_path() -> &'static FetchPath {
    static PATH: OnceLock<FetchPath> = OnceLock::new();
    PATH.get_or_init(|| FetchPath {
        latency_micros: obs::histogram("logbus.fetch.micros"),
        records: obs::counter("logbus.fetch.records"),
    })
}

impl FetchPath {
    /// Records one fetch returning `records` records after `elapsed`.
    pub(crate) fn observe(&self, records: u64, elapsed: std::time::Duration) {
        self.latency_micros.record(elapsed.as_micros() as u64);
        self.records.add(records);
    }
}

/// Fleet-wide producer totals (sums over all [`crate::Producer`]
/// instances); the per-instance counts live on each producer.
pub(crate) struct ProducerTotals {
    pub(crate) sent: obs::Counter,
    pub(crate) dropped: obs::Counter,
    pub(crate) flushes: obs::Counter,
}

pub(crate) fn producer_totals() -> &'static ProducerTotals {
    static TOTALS: OnceLock<ProducerTotals> = OnceLock::new();
    TOTALS.get_or_init(|| ProducerTotals {
        sent: obs::counter("logbus.producer.sent"),
        dropped: obs::counter("logbus.producer.dropped"),
        flushes: obs::counter("logbus.producer.flushes"),
    })
}

/// Retry-loop outcomes across every client tier (see
/// [`crate::retry::with_retry`] and the handle-internal retry loops).
pub(crate) struct RetryPath {
    /// Retry attempts made (excludes each call's first attempt).
    pub(crate) attempts: obs::Counter,
    /// Calls that failed transiently but eventually succeeded.
    pub(crate) recoveries: obs::Counter,
    /// Calls abandoned with [`crate::Error::RetriesExhausted`].
    pub(crate) give_ups: obs::Counter,
    /// Give-ups caused by the wall-clock budget (subset of `give_ups`).
    pub(crate) timeouts: obs::Counter,
}

pub(crate) fn retry_path() -> &'static RetryPath {
    static PATH: OnceLock<RetryPath> = OnceLock::new();
    PATH.get_or_init(|| RetryPath {
        attempts: obs::counter("logbus.retry.attempts"),
        recoveries: obs::counter("logbus.retry.recoveries"),
        give_ups: obs::counter("logbus.retry.give_ups"),
        timeouts: obs::counter("logbus.retry.timeouts"),
    })
}

/// Faults injected by an installed [`crate::FaultPlan`], by class.
pub(crate) struct FaultPath {
    pub(crate) errors: obs::Counter,
    pub(crate) ack_losses: obs::Counter,
    pub(crate) duplicates: obs::Counter,
    pub(crate) latencies: obs::Counter,
}

pub(crate) fn fault_path() -> &'static FaultPath {
    static PATH: OnceLock<FaultPath> = OnceLock::new();
    PATH.get_or_init(|| FaultPath {
        errors: obs::counter("logbus.fault.errors"),
        ack_losses: obs::counter("logbus.fault.ack_losses"),
        duplicates: obs::counter("logbus.fault.duplicates"),
        latencies: obs::counter("logbus.fault.latencies"),
    })
}

/// Records queued in [`crate::AsyncProducer`]s but not yet appended.
pub(crate) fn async_queue_depth() -> &'static obs::Gauge {
    static DEPTH: OnceLock<obs::Gauge> = OnceLock::new();
    DEPTH.get_or_init(|| obs::gauge("logbus.async_producer.queue_depth"))
}

/// Per-partition leader health: how often a produce found the append
/// lock already held (a second producer contending on the same leader).
pub(crate) struct LeaderPath {
    /// Appends that had to wait for the partition append lock.
    pub(crate) append_contended: obs::Counter,
    /// Appends that took the lock uncontended (fast path).
    pub(crate) append_uncontended: obs::Counter,
}

pub(crate) fn leader_path() -> &'static LeaderPath {
    static PATH: OnceLock<LeaderPath> = OnceLock::new();
    PATH.get_or_init(|| LeaderPath {
        append_contended: obs::counter("logbus.leader.append_contended"),
        append_uncontended: obs::counter("logbus.leader.append_uncontended"),
    })
}

/// Crash-failover activity: elections, fencing, log repair, and the
/// client-visible unavailability window.
pub(crate) struct FailoverPath {
    /// Leader elections completed (each promotes an in-sync follower).
    pub(crate) elections: obs::Counter,
    /// Leader-epoch bumps applied to partition logs (elections plus
    /// rejoin fencing).
    pub(crate) epoch_bumps: obs::Counter,
    /// Records truncated from diverged replica logs at election or
    /// rejoin time.
    pub(crate) truncated_records: obs::Counter,
    /// Client-visible unavailability per outage: first failover-class
    /// error to the next success of the same retried request.
    pub(crate) unavailability_micros: obs::Histogram,
}

pub(crate) fn failover_path() -> &'static FailoverPath {
    static PATH: OnceLock<FailoverPath> = OnceLock::new();
    PATH.get_or_init(|| FailoverPath {
        elections: obs::counter("logbus.failover.elections"),
        epoch_bumps: obs::counter("logbus.failover.epoch_bumps"),
        truncated_records: obs::counter("logbus.failover.truncated_records"),
        unavailability_micros: obs::histogram("logbus.failover.unavailability_micros"),
    })
}

impl FailoverPath {
    /// Records one client-visible outage window.
    pub(crate) fn unavailability(&self, window: std::time::Duration) {
        self.unavailability_micros.record(window.as_micros() as u64);
    }
}

/// Consumer-group coordinator activity.
pub(crate) struct GroupPath {
    /// Membership changes across all groups (each bumps a generation).
    pub(crate) rebalances: obs::Counter,
    /// Generation of the most recently rebalanced group.
    pub(crate) generation: obs::Gauge,
}

pub(crate) fn group_path() -> &'static GroupPath {
    static PATH: OnceLock<GroupPath> = OnceLock::new();
    PATH.get_or_init(|| GroupPath {
        rebalances: obs::counter("logbus.group.rebalances"),
        generation: obs::gauge("logbus.group.generation"),
    })
}
