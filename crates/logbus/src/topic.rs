//! Topics: named collections of partition logs.

use crate::config::{TimestampType, TopicConfig};
use crate::error::{Error, Result};
use crate::log::{LogStats, PartitionLog};
use crate::record::{Record, StoredRecord, Timestamp};
use parking_lot::RwLock;

/// Busy-waits for `delay`: precise at the microsecond scales the
/// simulated network uses, where `thread::sleep` overshoots badly.
pub(crate) fn spin_delay(delay: std::time::Duration) {
    if delay.is_zero() {
        return;
    }
    let end = std::time::Instant::now() + delay;
    while std::time::Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// A named topic holding one [`PartitionLog`] per partition.
///
/// All methods are thread-safe; each partition is guarded by its own lock
/// so that producers targeting different partitions do not contend.
#[derive(Debug)]
pub struct Topic {
    name: String,
    config: TopicConfig,
    partitions: Vec<RwLock<PartitionLog>>,
}

impl Topic {
    /// Creates a topic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn new(name: impl Into<String>, config: TopicConfig) -> Result<Self> {
        config.validate().map_err(Error::InvalidConfig)?;
        let partitions = (0..config.partitions)
            .map(|_| RwLock::new(PartitionLog::new(config.clone())))
            .collect();
        Ok(Topic {
            name: name.into(),
            config,
            partitions,
        })
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The topic configuration.
    pub fn config(&self) -> &TopicConfig {
        &self.config
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    fn partition(&self, partition: u32) -> Result<&RwLock<PartitionLog>> {
        self.partitions
            .get(partition as usize)
            .ok_or_else(|| Error::UnknownPartition {
                topic: self.name.clone(),
                partition,
            })
    }

    /// Takes a partition's append lock, recording whether the
    /// acquisition contended — the per-partition leader health signal.
    /// With the obs gate off this is exactly `lock.write()` plus one
    /// branch, so the hot path stays allocation- and atomic-free.
    fn write_log<'a>(lock: &'a RwLock<PartitionLog>) -> parking_lot::WriteGuard<'a, PartitionLog> {
        if !obs::enabled() {
            return lock.write();
        }
        let leaders = crate::telemetry::leader_path();
        match lock.try_write() {
            Some(guard) => {
                leaders.append_uncontended.add(1);
                guard
            }
            None => {
                leaders.append_contended.add(1);
                lock.write()
            }
        }
    }

    /// Rejects a request carrying a leader epoch older than the one the
    /// log enforces. `None` (an unfenced direct-broker append) always
    /// passes; on the fault-free path this is one branch.
    fn check_fence(log: &PartitionLog, fence: Option<u64>) -> Result<()> {
        if let Some(epoch) = fence {
            let current = log.leader_epoch();
            if epoch < current {
                return Err(Error::FencedEpoch {
                    current,
                    requested: epoch,
                });
            }
        }
        Ok(())
    }

    /// Leader epoch currently enforced by `partition`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn leader_epoch(&self, partition: u32) -> Result<u64> {
        Ok(self.partition(partition)?.read().leader_epoch())
    }

    /// Raises the leader epoch enforced by `partition` (epochs never move
    /// backwards). Takes the partition's append lock, so in-flight appends
    /// from the old epoch either complete before the bump or are fenced
    /// after it — there is no in-between.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn set_leader_epoch(&self, partition: u32, epoch: u64) -> Result<()> {
        self.partition(partition)?.write().set_leader_epoch(epoch);
        Ok(())
    }

    /// Truncates `partition` to end at `offset`, returning the number of
    /// records removed (see [`PartitionLog::truncate_to`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn truncate_to(&self, partition: u32, offset: u64) -> Result<u64> {
        Ok(self.partition(partition)?.write().truncate_to(offset))
    }

    /// Appends leader-stored records verbatim onto `partition`, skipping
    /// any the replica already holds — the catch-up path for a follower
    /// rejoining after a crash. Offsets and timestamps are preserved.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn append_replica_batch(&self, partition: u32, records: &[StoredRecord]) -> Result<u64> {
        let lock = self.partition(partition)?;
        let mut log = lock.write();
        let mut copied = 0;
        for stored in records {
            if stored.offset < log.next_offset() {
                continue;
            }
            log.append_stored(stored.clone());
            copied += 1;
        }
        Ok(copied)
    }

    /// Appends `record` to `partition`, resolving the stored timestamp
    /// according to the topic's [`TimestampType`]. `now` is the broker
    /// clock reading. Returns the assigned offset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn append(&self, partition: u32, record: Record, now: Timestamp) -> Result<u64> {
        self.append_delayed(partition, record, now, std::time::Duration::ZERO)
    }

    /// Like [`Topic::append`], but holds the partition's append lock for
    /// an extra `delay` first — the broker's simulated network round
    /// trip. Holding the lock is deliberate: a partition has one leader,
    /// so concurrent producers to the same partition serialize their
    /// requests rather than overlapping them.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn append_delayed(
        &self,
        partition: u32,
        record: Record,
        now: Timestamp,
        delay: std::time::Duration,
    ) -> Result<u64> {
        self.append_fenced_delayed(partition, record, now, delay, None)
    }

    /// Like [`Topic::append_delayed`], with an optional leader-epoch
    /// fence: a request carrying an epoch older than the log's current
    /// one is rejected under the append lock, so a deposed leader's late
    /// write can never land after an election.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] or [`Error::FencedEpoch`].
    pub(crate) fn append_fenced_delayed(
        &self,
        partition: u32,
        record: Record,
        now: Timestamp,
        delay: std::time::Duration,
        fence: Option<u64>,
    ) -> Result<u64> {
        let lock = self.partition(partition)?;
        let mut log = Self::write_log(lock);
        spin_delay(delay);
        Self::check_fence(&log, fence)?;
        let stamp = match self.config.timestamp_type {
            // Clamped under the append lock: concurrent producers may
            // sample the clock out of order, but `LogAppendTime` is
            // assigned by the (serialized) append, so it never decreases
            // along a partition.
            TimestampType::LogAppendTime => log.last_timestamp().map_or(now, |last| now.max(last)),
            TimestampType::CreateTime => record.timestamp.unwrap_or(now),
        };
        Ok(log.append(record, stamp))
    }

    /// Like [`Topic::append_delayed`], for an idempotent producer: the
    /// append carries `(producer_id, seq)` and is skipped — returning the
    /// previously assigned offset — when the broker already applied it
    /// (a retry after a lost ack). The dedup decision happens under the
    /// same partition append lock as the append itself.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn append_sequenced_delayed(
        &self,
        partition: u32,
        record: Record,
        now: Timestamp,
        delay: std::time::Duration,
        producer_id: u64,
        seq: u64,
        fence: Option<u64>,
    ) -> Result<u64> {
        let lock = self.partition(partition)?;
        let mut log = Self::write_log(lock);
        spin_delay(delay);
        Self::check_fence(&log, fence)?;
        if let Some(base) = log.duplicate_of(producer_id, seq) {
            return Ok(base);
        }
        let stamp = match self.config.timestamp_type {
            TimestampType::LogAppendTime => log.last_timestamp().map_or(now, |last| now.max(last)),
            TimestampType::CreateTime => record.timestamp.unwrap_or(now),
        };
        let offset = log.append(record, stamp);
        log.record_seq(producer_id, seq, offset);
        Ok(offset)
    }

    /// Sequenced batch append; see [`Topic::append_sequenced_delayed`]
    /// and [`Topic::append_batch_delayed`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    /// Drains `records` (the drained-Vec contract: the batch comes back
    /// empty with its capacity intact, even when the broker skips a
    /// duplicate), so producer buffers recycle instead of reallocating.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn append_batch_sequenced_delayed(
        &self,
        partition: u32,
        records: &mut Vec<Record>,
        now: Timestamp,
        delay: std::time::Duration,
        producer_id: u64,
        first_seq: u64,
        fence: Option<u64>,
    ) -> Result<u64> {
        let lock = self.partition(partition)?;
        let mut log = Self::write_log(lock);
        spin_delay(delay);
        Self::check_fence(&log, fence)?;
        if let Some(base) = log.duplicate_of(producer_id, first_seq) {
            // The broker already holds these records; the retried batch
            // is accepted (and therefore drained) without re-appending.
            records.clear();
            return Ok(base);
        }
        let append_stamp = log.last_timestamp().map_or(now, |last| now.max(last));
        let base = log.next_offset();
        for record in records.drain(..) {
            let stamp = match self.config.timestamp_type {
                TimestampType::LogAppendTime => append_stamp,
                TimestampType::CreateTime => record.timestamp.unwrap_or(now),
            };
            log.append(record, stamp);
        }
        log.record_seq(producer_id, first_seq, base);
        Ok(base)
    }

    /// Appends a batch, returning the offset of the first record.
    ///
    /// The batch is appended atomically with respect to other producers of
    /// the same partition: all records receive consecutive offsets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn append_batch(
        &self,
        partition: u32,
        records: Vec<Record>,
        now: Timestamp,
    ) -> Result<u64> {
        let mut records = records;
        let result =
            self.append_batch_delayed(partition, &mut records, now, std::time::Duration::ZERO);
        if result.is_ok() {
            crate::pool::recycle_record_vec(records);
        }
        result
    }

    /// Like [`Topic::append_batch`], holding the partition's append lock
    /// for an extra `delay` first (see [`Topic::append_delayed`]).
    ///
    /// Drains `records`: on success the batch comes back empty with its
    /// capacity intact, so steady-state producers flush the same buffer
    /// forever; on failure the records are left in place for the resend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn append_batch_delayed(
        &self,
        partition: u32,
        records: &mut Vec<Record>,
        now: Timestamp,
        delay: std::time::Duration,
    ) -> Result<u64> {
        self.append_batch_fenced_delayed(partition, records, now, delay, None)
    }

    /// Like [`Topic::append_batch_delayed`], with an optional leader-epoch
    /// fence (see [`Topic::append_fenced_delayed`]). On a fencing
    /// rejection the records are left in place, as on any other failure.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] or [`Error::FencedEpoch`].
    pub(crate) fn append_batch_fenced_delayed(
        &self,
        partition: u32,
        records: &mut Vec<Record>,
        now: Timestamp,
        delay: std::time::Duration,
        fence: Option<u64>,
    ) -> Result<u64> {
        let lock = self.partition(partition)?;
        let mut log = Self::write_log(lock);
        spin_delay(delay);
        Self::check_fence(&log, fence)?;
        // One shared, monotone `LogAppendTime` stamp for the whole batch
        // (see `append_delayed` for why the clamp happens under the lock).
        let append_stamp = log.last_timestamp().map_or(now, |last| now.max(last));
        let base = log.next_offset();
        for record in records.drain(..) {
            let stamp = match self.config.timestamp_type {
                TimestampType::LogAppendTime => append_stamp,
                TimestampType::CreateTime => record.timestamp.unwrap_or(now),
            };
            log.append(record, stamp);
        }
        Ok(base)
    }

    /// Reads up to `max` records of `partition` starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] or [`Error::OffsetOutOfRange`].
    pub fn read(&self, partition: u32, offset: u64, max: usize) -> Result<Vec<StoredRecord>> {
        Ok(self.partition(partition)?.read().read(offset, max)?)
    }

    /// Like [`Topic::read`], but **appends** into `out` (never clearing
    /// it), returning the number of records appended — the allocation-free
    /// read path for buffer-reusing consumers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] or [`Error::OffsetOutOfRange`].
    pub fn read_into(
        &self,
        partition: u32,
        offset: u64,
        max: usize,
        out: &mut Vec<StoredRecord>,
    ) -> Result<usize> {
        Ok(self
            .partition(partition)?
            .read()
            .read_into(offset, max, out)?)
    }

    /// Next offset to be written in `partition`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn latest_offset(&self, partition: u32) -> Result<u64> {
        Ok(self.partition(partition)?.read().next_offset())
    }

    /// Earliest retained offset in `partition`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn earliest_offset(&self, partition: u32) -> Result<u64> {
        Ok(self.partition(partition)?.read().earliest_offset())
    }

    /// Timestamp of the first retained record in `partition`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn first_timestamp(&self, partition: u32) -> Result<Option<Timestamp>> {
        Ok(self.partition(partition)?.read().first_timestamp())
    }

    /// Timestamp of the last record in `partition`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn last_timestamp(&self, partition: u32) -> Result<Option<Timestamp>> {
        Ok(self.partition(partition)?.read().last_timestamp())
    }

    /// Offset of the first record in `partition` stored at or after `ts`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn offset_for_timestamp(&self, partition: u32, ts: Timestamp) -> Result<Option<u64>> {
        Ok(self.partition(partition)?.read().offset_for_timestamp(ts))
    }

    /// Statistics for `partition`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for out-of-range partitions.
    pub fn stats(&self, partition: u32) -> Result<LogStats> {
        Ok(self.partition(partition)?.read().stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_config_is_rejected() {
        let config = TopicConfig {
            replication_factor: 0,
            ..TopicConfig::default()
        };
        assert!(matches!(
            Topic::new("t", config),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn append_respects_timestamp_type() {
        let log_append = Topic::new(
            "la",
            TopicConfig::default().timestamp_type(TimestampType::LogAppendTime),
        )
        .unwrap();
        let create = Topic::new(
            "ct",
            TopicConfig::default().timestamp_type(TimestampType::CreateTime),
        )
        .unwrap();
        let record = Record::from_value("x").with_timestamp(Timestamp::from_micros(7));
        let now = Timestamp::from_micros(99);

        log_append.append(0, record.clone(), now).unwrap();
        create.append(0, record, now).unwrap();

        assert_eq!(
            log_append.read(0, 0, 1).unwrap()[0].timestamp.as_micros(),
            99
        );
        assert_eq!(create.read(0, 0, 1).unwrap()[0].timestamp.as_micros(), 7);
    }

    #[test]
    fn create_time_falls_back_to_clock() {
        let topic = Topic::new(
            "ct",
            TopicConfig::default().timestamp_type(TimestampType::CreateTime),
        )
        .unwrap();
        topic
            .append(0, Record::from_value("x"), Timestamp::from_micros(5))
            .unwrap();
        assert_eq!(topic.read(0, 0, 1).unwrap()[0].timestamp.as_micros(), 5);
    }

    #[test]
    fn batch_append_is_contiguous() {
        let topic = Topic::new("t", TopicConfig::default()).unwrap();
        let batch: Vec<Record> = (0..10)
            .map(|i| Record::from_value(format!("{i}")))
            .collect();
        let base = topic
            .append_batch(0, batch, Timestamp::from_micros(1))
            .unwrap();
        assert_eq!(base, 0);
        let base2 = topic
            .append_batch(0, vec![Record::from_value("x")], Timestamp::from_micros(2))
            .unwrap();
        assert_eq!(base2, 10);
        assert_eq!(topic.latest_offset(0).unwrap(), 11);
    }

    #[test]
    fn unknown_partition_errors() {
        let topic = Topic::new("t", TopicConfig::default().partitions(2)).unwrap();
        assert!(topic
            .append(5, Record::from_value("x"), Timestamp(0))
            .is_err());
        assert!(topic.read(2, 0, 1).is_err());
        assert!(topic.latest_offset(2).is_err());
        assert_eq!(topic.partition_count(), 2);
    }

    #[test]
    fn stale_epoch_appends_are_fenced() {
        let topic = Topic::new("t", TopicConfig::default()).unwrap();
        topic.set_leader_epoch(0, 2).unwrap();
        // Current or newer epochs pass; older ones are rejected.
        topic
            .append_fenced_delayed(
                0,
                Record::from_value("ok"),
                Timestamp(1),
                std::time::Duration::ZERO,
                Some(2),
            )
            .unwrap();
        let err = topic
            .append_fenced_delayed(
                0,
                Record::from_value("stale"),
                Timestamp(2),
                std::time::Duration::ZERO,
                Some(1),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::FencedEpoch {
                current: 2,
                requested: 1
            }
        ));
        // Unfenced (direct broker) appends are unaffected.
        topic
            .append(0, Record::from_value("direct"), Timestamp(3))
            .unwrap();
        assert_eq!(topic.latest_offset(0).unwrap(), 2);
    }

    #[test]
    fn fenced_batch_leaves_records_for_resend() {
        let topic = Topic::new("t", TopicConfig::default()).unwrap();
        topic.set_leader_epoch(0, 5).unwrap();
        let mut batch = vec![Record::from_value("a"), Record::from_value("b")];
        let err = topic
            .append_batch_fenced_delayed(
                0,
                &mut batch,
                Timestamp(1),
                std::time::Duration::ZERO,
                Some(4),
            )
            .unwrap_err();
        assert!(matches!(err, Error::FencedEpoch { .. }));
        assert_eq!(batch.len(), 2, "failed batch stays intact for resend");
    }

    #[test]
    fn replica_catch_up_skips_held_records() {
        let leader = Topic::new("t", TopicConfig::default()).unwrap();
        for i in 0..5 {
            leader
                .append(0, Record::from_value(format!("r{i}")), Timestamp(i))
                .unwrap();
        }
        let follower = Topic::new("t", TopicConfig::default()).unwrap();
        follower
            .append(0, Record::from_value("r0"), Timestamp(0))
            .unwrap();
        let all = leader.read(0, 0, 100).unwrap();
        let copied = follower.append_replica_batch(0, &all).unwrap();
        assert_eq!(copied, 4, "record 0 already held");
        assert_eq!(follower.latest_offset(0).unwrap(), 5);
        let mirrored = follower.read(0, 0, 100).unwrap();
        for (i, r) in mirrored.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
        }
    }

    #[test]
    fn truncate_then_reappend() {
        let topic = Topic::new("t", TopicConfig::default()).unwrap();
        for i in 0..4 {
            topic
                .append(0, Record::from_value(format!("{i}")), Timestamp(i))
                .unwrap();
        }
        assert_eq!(topic.truncate_to(0, 2).unwrap(), 2);
        assert_eq!(topic.latest_offset(0).unwrap(), 2);
        let off = topic
            .append(0, Record::from_value("new"), Timestamp(9))
            .unwrap();
        assert_eq!(off, 2);
    }

    #[test]
    fn per_partition_isolation() {
        let topic = Topic::new("t", TopicConfig::default().partitions(2)).unwrap();
        topic
            .append(0, Record::from_value("a"), Timestamp(1))
            .unwrap();
        topic
            .append(1, Record::from_value("b"), Timestamp(2))
            .unwrap();
        topic
            .append(1, Record::from_value("c"), Timestamp(3))
            .unwrap();
        assert_eq!(topic.latest_offset(0).unwrap(), 1);
        assert_eq!(topic.latest_offset(1).unwrap(), 2);
        assert_eq!(topic.first_timestamp(1).unwrap().unwrap().as_micros(), 2);
        assert_eq!(topic.last_timestamp(1).unwrap().unwrap().as_micros(), 3);
    }
}
