//! Chaos properties: at-least-once delivery under arbitrary seeded
//! fault plans.
//!
//! A random [`FaultPlan`] is installed on the broker, a random record
//! stream is produced through the retrying client tiers, and the suite
//! asserts the delivery contract from DESIGN.md §10: **no record is
//! lost**, duplicates are **bounded** (and absent entirely for the
//! idempotent writers), and `LogAppendTime` stays **monotone** per
//! partition even across fault-recovery retries.

use logbus::{
    Broker, Consumer, ConsumerConfig, FaultPlan, Producer, ProducerConfig, Record, TopicConfig,
};
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0..0.4f64,
        0.0..0.4f64,
        0.0..0.4f64,
        0.0..0.3f64,
        0.0..0.2f64,
        0u32..8,
        1u32..4,
    )
        .prop_map(
            |(seed, produce, fetch, metadata, ack_loss, duplicate, max_dups, max_consecutive)| {
                let mut plan = FaultPlan::seeded(seed);
                plan.produce_error = produce;
                plan.fetch_error = fetch;
                plan.metadata_error = metadata;
                plan.ack_loss = ack_loss;
                plan.duplicate = duplicate;
                plan.max_duplicates = max_dups;
                plan.max_consecutive = max_consecutive;
                // Latency faults only slow the suite down; correctness is
                // covered by the error/ack-loss/duplicate classes.
                plan.extra_latency = 0.0;
                plan
            },
        )
}

fn arb_values() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 1..150)
}

proptest! {
    /// Idempotent produce through the batching `Producer` plus a
    /// retrying `Consumer` yields exactly-once contents under any plan:
    /// every value survives, nothing is duplicated, offsets are dense,
    /// and broker append timestamps never run backwards.
    #[test]
    fn idempotent_pipeline_is_exactly_once(plan in arb_plan(), values in arb_values(), batch in 1usize..32) {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::default()).unwrap();
        broker.install_fault_plan(plan);

        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig { batch_records: batch, ..ProducerConfig::default() },
        );
        for v in &values {
            producer.send("t", Record::from_value(v.to_le_bytes().to_vec())).unwrap();
        }
        producer.close().unwrap();

        let mut consumer = Consumer::with_config(broker.clone(), ConsumerConfig::default());
        consumer.assign("t", 0).unwrap();
        let mut seen = Vec::new();
        loop {
            let polled = consumer.poll(64).unwrap();
            if polled.is_empty() {
                break;
            }
            seen.extend(polled);
        }
        broker.clear_fault_plan();

        prop_assert_eq!(seen.len(), values.len(), "no loss, no duplicates");
        let mut last_stamp = i64::MIN;
        for (i, (stored, sent)) in seen.iter().zip(&values).enumerate() {
            prop_assert_eq!(stored.offset, i as u64, "offsets stay dense");
            prop_assert_eq!(&stored.record.value[..], &sent.to_le_bytes()[..]);
            let stamp = stored.timestamp.as_micros();
            prop_assert!(stamp >= last_stamp, "LogAppendTime must be monotone");
            last_stamp = stamp;
        }
    }

    /// The plain (non-idempotent) writer path is at-least-once: under
    /// lost acks and injected duplicate appends records may repeat, but
    /// never more than the plan's duplication bound allows, and every
    /// produced value is present after recovery.
    #[test]
    fn plain_writer_is_at_least_once_with_bounded_duplicates(plan in arb_plan(), values in arb_values()) {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::default()).unwrap();
        // Resolve the handle fault-free (named resolution deliberately
        // does not retry — clients own that); the produce loop below
        // runs entirely under the plan.
        let writer = broker.partition_writer("t", 0).unwrap();
        broker.install_fault_plan(plan.clone());
        for v in &values {
            writer.produce(Record::from_value(v.to_le_bytes().to_vec())).unwrap();
        }
        broker.clear_fault_plan();

        let stored = broker.fetch("t", 0, 0, values.len() * 4 + 64).unwrap();
        prop_assert!(stored.len() >= values.len(), "at-least-once: nothing lost");

        // Each produce makes at most `max_consecutive` lost-ack resends,
        // and the broker injects at most `max_duplicates` extra appends
        // per key over the plan's life.
        let per_record_bound = 1 + plan.max_consecutive as usize;
        let bound = values.len() * per_record_bound + plan.max_duplicates as usize;
        prop_assert!(
            stored.len() <= bound,
            "duplicates are bounded: {} stored, bound {}",
            stored.len(),
            bound
        );

        // Every sent value appears, in order, allowing repeats between —
        // i.e. the sent stream is a subsequence of the stored stream.
        let mut cursor = stored.iter();
        for v in &values {
            let bytes = v.to_le_bytes();
            prop_assert!(
                cursor.any(|s| s.record.value[..] == bytes[..]),
                "value {v} lost under fault plan"
            );
        }

        let mut last_stamp = i64::MIN;
        for s in &stored {
            let stamp = s.timestamp.as_micros();
            prop_assert!(stamp >= last_stamp, "LogAppendTime must be monotone");
            last_stamp = stamp;
        }
    }

    /// The pooled drain-batch path is exactly-once under any plan: each
    /// batch drains out of the reused pool vector on success (fault
    /// recovery happens inside the idempotent writer), the vector leaks
    /// nothing across batches, and the log holds exactly the sent stream.
    #[test]
    fn pooled_drain_batches_are_exactly_once_under_faults(
        plan in arb_plan(),
        values in arb_values(),
        batch in 1usize..24,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::default()).unwrap();
        let writer = broker
            .partition_writer("t", 0)
            .unwrap()
            .idempotent()
            .with_retry(logbus::RetryPolicy::default());
        broker.install_fault_plan(plan);

        // One pool vector reused for every batch — the producer-tier
        // steady state.
        let mut buffer = logbus::pool::record_vec();
        for chunk in values.chunks(batch) {
            prop_assert!(buffer.is_empty(), "nothing leaks across batches");
            for v in chunk {
                buffer.push(Record::from_value(v.to_le_bytes().to_vec()));
            }
            writer.produce_batch_drain(&mut buffer).unwrap();
            prop_assert!(buffer.is_empty(), "success drains the batch");
        }
        broker.clear_fault_plan();
        logbus::pool::recycle_record_vec(buffer);

        let stored = broker.fetch("t", 0, 0, values.len() + 64).unwrap();
        prop_assert_eq!(stored.len(), values.len(), "exactly-once");
        for (i, (s, v)) in stored.iter().zip(&values).enumerate() {
            prop_assert_eq!(s.offset, i as u64);
            prop_assert_eq!(&s.record.value[..], &v.to_le_bytes()[..]);
        }
    }
}

/// End-of-suite gate for the `check-sync` build: after every chaos
/// scenario above ran, the shim's lock-order graph must be acyclic and
/// the broker append witnesses untripped. Named `zzz_` so libtest's
/// alphabetical order runs it last (CI passes `--test-threads=1`).
#[cfg(feature = "check-sync")]
#[test]
fn zzz_sync_checker_is_clean_after_chaos() {
    parking_lot::sync_check::assert_clean("logbus chaos suite");
    println!("{}", parking_lot::sync_check::report());
}
