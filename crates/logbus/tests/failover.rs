//! Failover safety: the DESIGN.md §10 replication contract under broker
//! crashes, exercised end to end through the routed client tiers.
//!
//! The core property test is **seeded randomized** rather than
//! proptest-driven: the schedule interleaves produces with broker kills
//! and restarts, and a failing seed must replay byte-for-byte —
//! including the wall-clock-free election and truncation decisions — so
//! the schedule comes from an explicit SplitMix64 stream per fixed seed.
//!
//! Two invariants are asserted at every committed read and once more
//! after quiescence:
//!
//! 1. **No acked loss** — every record acknowledged under `Acks::All`
//!    survives every election, exactly once, in produce order.
//! 2. **No zombie reads** — committed reads never surface a record that
//!    was not produced through the client path (a deposed leader's
//!    unreplicated tail is truncated, never served), and never run past
//!    the high-watermark.

use logbus::{
    Acks, AssignmentStrategy, BusHandle, Cluster, ClusterConfig, Error, Record, RetryPolicy,
    TopicConfig,
};
use std::time::{Duration, Instant};

/// Deterministic schedule stream (Steele et al.'s SplitMix64).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// One produced record: its value and whether the produce was
/// acknowledged (`Err` leaves the outcome indeterminate — the record may
/// or may not have landed, but must never land twice).
struct Sent {
    value: u64,
    acked: bool,
}

fn decode(value: &[u8]) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(value);
    u64::from_le_bytes(bytes)
}

/// Asserts the committed log against the send history: it must be a
/// subsequence of the sends (no zombies, no reordering), contain every
/// acked send, and contain nothing twice.
fn assert_committed_log(committed: &[u64], sent: &[Sent], context: &str) {
    let mut cursor = committed.iter().peekable();
    for s in sent {
        if cursor.peek() == Some(&&s.value) {
            cursor.next();
        } else {
            assert!(
                !s.acked,
                "{context}: acked value {} lost or reordered (committed: {committed:?})",
                s.value
            );
        }
    }
    assert!(
        cursor.peek().is_none(),
        "{context}: committed log contains zombie records: {:?}",
        cursor.collect::<Vec<_>>()
    );
}

/// The seeded randomized failover safety property. Each seed drives a
/// fresh 3-broker cluster through ~150 interleaved produces, kills,
/// restarts, and committed-read checks; the cluster must never lose an
/// `Acks::All`-acked record nor surface a zombie write past the
/// high-watermark.
#[test]
fn seeded_random_kills_never_lose_acked_records_or_surface_zombies() {
    for &seed in &[2019u64, 97, 0xF417_0BE5, 0xDEAD_BEEF, 31_337, 8_675_309] {
        let mut rng = SplitMix64(seed);
        let cluster = Cluster::new(ClusterConfig { brokers: 3 });
        cluster
            .create_topic("t", TopicConfig::default().replication_factor(3))
            .unwrap();
        let writer = cluster
            .partition_writer("t", 0)
            .unwrap()
            .idempotent()
            .with_acks(Acks::All)
            .with_retry(RetryPolicy::default());

        let mut alive = [true; 3];
        let mut sent: Vec<Sent> = Vec::new();
        let mut next_value = 0u64;

        for _ in 0..150 {
            match rng.below(100) {
                // Produce one record through the retrying idempotent
                // writer; a final error leaves it indeterminate.
                0..=54 => {
                    let value = next_value;
                    next_value += 1;
                    let acked = writer
                        .produce(Record::from_value(value.to_le_bytes().to_vec()))
                        .is_ok();
                    sent.push(Sent { value, acked });
                }
                // Kill a broker — but never the last one standing.
                55..=69 => {
                    let victim = rng.below(3) as usize;
                    if alive[victim] && alive.iter().filter(|&&a| a).count() > 1 {
                        cluster.kill_broker(victim);
                        alive[victim] = false;
                    }
                }
                // Restart a dead broker: it truncates its unreplicated
                // tail and rejoins as a catching-up follower.
                70..=84 => {
                    let victim = rng.below(3) as usize;
                    if !alive[victim] {
                        cluster.restart_broker(victim);
                        alive[victim] = true;
                    }
                }
                // Committed read: check both invariants mid-schedule. A
                // read can legitimately fail here (the only live broker
                // may be a catching-up ex-follower that cannot be
                // elected yet) — skip the check then; the final
                // quiescent read below never skips.
                _ => {
                    if let Ok(records) = cluster.fetch("t", 0, 0, sent.len() + 16) {
                        let hw = cluster.high_watermark_of("t", 0).unwrap();
                        let committed: Vec<u64> =
                            records.iter().map(|s| decode(&s.record.value)).collect();
                        assert!(
                            committed.len() as u64 <= hw,
                            "seed {seed}: committed read ran past the high-watermark"
                        );
                        assert_committed_log(&committed, &sent, &format!("seed {seed} (mid)"));
                    }
                }
            }
        }

        // Quiescence: restart everything, force one more fully-acked
        // produce so the in-sync set re-forms and the high-watermark
        // reaches the log end, then check the final committed log.
        for (broker, alive) in alive.iter().enumerate() {
            if !alive {
                cluster.restart_broker(broker);
            }
        }
        let value = next_value;
        writer
            .produce(Record::from_value(value.to_le_bytes().to_vec()))
            .unwrap();
        sent.push(Sent { value, acked: true });

        let committed: Vec<u64> = cluster
            .fetch("t", 0, 0, sent.len() + 16)
            .unwrap()
            .iter()
            .map(|s| decode(&s.record.value))
            .collect();
        assert_committed_log(&committed, &sent, &format!("seed {seed} (final)"));
        let acked = sent.iter().filter(|s| s.acked).count();
        assert!(
            committed.len() >= acked,
            "seed {seed}: {} committed < {acked} acked",
            committed.len()
        );
        assert!(
            cluster.leader_epoch("t", 0).unwrap() > 0 || sent.iter().all(|s| s.acked),
            "seed {seed}: schedule should have forced at least one election \
             unless it never failed a produce"
        );
    }
}

/// Satellite: the retry tier's **wall budget** is a hard ceiling. With
/// every broker dead no election can succeed, so a routed produce must
/// burn its budget and surface `RetriesExhausted` wrapping the
/// partition-offline error — and recover as soon as a broker returns.
#[test]
fn retry_wall_budget_exhausts_while_the_whole_cluster_is_down() {
    let cluster = Cluster::new(ClusterConfig { brokers: 2 });
    cluster
        .create_topic("t", TopicConfig::default().replication_factor(2))
        .unwrap();
    let budget = Duration::from_millis(15);
    let writer = cluster
        .partition_writer("t", 0)
        .unwrap()
        .with_acks(Acks::Leader)
        .with_retry(RetryPolicy {
            // Attempts must not be the binding constraint.
            max_retries: u32::MAX,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(500),
            timeout: budget,
            seed: 7,
        });
    writer.produce(Record::from_value("pre")).unwrap();

    cluster.kill_broker(0);
    cluster.kill_broker(1);
    let started = Instant::now();
    let err = writer.produce(Record::from_value("down")).unwrap_err();
    let elapsed = started.elapsed();
    match err {
        Error::RetriesExhausted { attempts, last } => {
            assert!(attempts > 1, "the budget must cover multiple attempts");
            assert!(
                matches!(*last, Error::PartitionOffline { .. } | Error::BrokerDown),
                "unexpected terminal error: {last}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
    assert!(
        elapsed >= budget,
        "gave up after {elapsed:?}, before the {budget:?} wall budget was spent"
    );

    // Recovery: the brokers back up, the next produce goes through. The
    // timed-out record never landed (the leader died before any
    // append), so the log holds exactly "pre" and "back".
    cluster.restart_broker(0);
    cluster.restart_broker(1);
    writer.produce(Record::from_value("back")).unwrap();
    assert_eq!(cluster.latest_offset("t", 0).unwrap(), 2);
}

/// Satellite: the group commit-then-release handover survives the death
/// of the coordinator's broker mid-handover. Reader A consumes part of a
/// partitioned topic and commits; the coordinator broker is killed;
/// reader B joins through the surviving brokers (forcing A to commit and
/// release under the new coordinator); both drain. Nothing may be
/// consumed twice and no commit may be lost.
#[test]
fn group_handover_survives_coordinator_death() {
    const PARTITIONS: u32 = 4;
    const RECORDS: u64 = 200;
    let cluster = Cluster::new(ClusterConfig { brokers: 3 });
    cluster
        .create_topic(
            "t",
            TopicConfig::default()
                .partitions(PARTITIONS)
                .replication_factor(3),
        )
        .unwrap();
    for value in 0..RECORDS {
        cluster
            .produce(
                "t",
                (value % u64::from(PARTITIONS)) as u32,
                Record::from_value(value.to_le_bytes().to_vec()),
            )
            .unwrap();
    }
    let bus = BusHandle::from(&cluster).as_bus();

    let mut seen: Vec<u64> = Vec::new();
    let mut reader_a =
        logbus::GroupedReader::bounded(bus.clone(), "t", "g", AssignmentStrategy::Range).unwrap();
    assert_eq!(reader_a.owned_partitions(), PARTITIONS as usize);

    // A consumes part of its assignment and commits — these positions
    // must survive the coordinator's death.
    let consumed_before = reader_a.fetch_pass(40, &mut |_, stored| {
        seen.push(decode(&stored.record.value));
    });
    assert!(consumed_before > 0);
    reader_a.commit().unwrap();

    // The coordinator (first alive broker) dies mid-handover: group
    // state lives cluster-side, so the join below and A's
    // commit-then-release both proceed under the successor coordinator.
    cluster.kill_broker(0);

    let mut reader_b =
        logbus::GroupedReader::bounded(bus, "t", "g", AssignmentStrategy::Range).unwrap();
    // A reconciles: commits and releases the partitions B now owns.
    reader_a.poll_rebalance().unwrap();
    let _ = reader_b.poll_rebalance().unwrap();
    assert_eq!(
        reader_a.owned_partitions() + reader_b.owned_partitions(),
        PARTITIONS as usize,
        "the group must split the topic, not overlap"
    );
    assert!(reader_b.owned_partitions() > 0, "B claimed nothing");

    // Both members drain to the bounded finish line.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !(reader_a.drained() && reader_b.drained()) {
        assert!(Instant::now() < deadline, "group never drained");
        let _ = reader_a.poll_rebalance();
        let _ = reader_b.poll_rebalance();
        reader_a.fetch_pass(64, &mut |_, stored| {
            seen.push(decode(&stored.record.value));
        });
        reader_b.fetch_pass(64, &mut |_, stored| {
            seen.push(decode(&stored.record.value));
        });
        // `drained` judges peers by their committed offsets, so both
        // members publish their progress each pass.
        let _ = reader_a.commit();
        let _ = reader_b.commit();
    }

    seen.sort_unstable();
    let expected: Vec<u64> = (0..RECORDS).collect();
    assert_eq!(
        seen, expected,
        "handover across coordinator death must be exactly-once"
    );
}

/// Kill-the-leader chaos phase: an idempotent producer and a committed
/// consumer ride through repeated leader kills and delayed restarts with
/// exactly-once, in-order output — the logbus-tier version of the
/// engine suite's kill-the-leader phase.
#[test]
fn producer_consumer_pipeline_rides_through_repeated_leader_kills() {
    const RECORDS: u64 = 400;
    let cluster = Cluster::new(ClusterConfig { brokers: 3 });
    cluster
        .create_topic("t", TopicConfig::default().replication_factor(3))
        .unwrap();
    let writer = cluster
        .partition_writer("t", 0)
        .unwrap()
        .idempotent()
        .with_acks(Acks::All)
        .with_retry(RetryPolicy::default());

    let mut pending_restart: Option<(usize, u64)> = None;
    for value in 0..RECORDS {
        // A killed leader stays down for the next 20 produces — the
        // cluster serves on the surviving in-sync replicas meanwhile —
        // then rejoins, truncates, and catches back up.
        if let Some((broker, due)) = pending_restart {
            if value >= due {
                cluster.restart_broker(broker);
                pending_restart = None;
            }
        }
        if value % 50 == 25 && pending_restart.is_none() {
            let leader = cluster.leader_of("t", 0).unwrap();
            cluster.kill_broker(leader);
            pending_restart = Some((leader, value + 20));
        }
        writer
            .produce(Record::from_value(value.to_le_bytes().to_vec()))
            .unwrap();
    }
    if let Some((broker, _)) = pending_restart {
        cluster.restart_broker(broker);
    }

    assert!(
        cluster.leader_epoch("t", 0).unwrap() > 0,
        "the kills must have forced elections"
    );
    let stored = cluster.fetch("t", 0, 0, RECORDS as usize + 16).unwrap();
    assert_eq!(stored.len() as u64, RECORDS, "exactly-once");
    for (i, s) in stored.iter().enumerate() {
        assert_eq!(s.offset, i as u64);
        assert_eq!(decode(&s.record.value), i as u64, "in order");
    }
}

/// End-of-suite gate for the `check-sync` build: the failover scenarios
/// above must leave the lock-order graph acyclic and every append
/// witness untripped. Named `zzz_` so libtest's alphabetical order runs
/// it last (CI passes `--test-threads=1`).
#[cfg(feature = "check-sync")]
#[test]
fn zzz_sync_checker_is_clean_after_failover() {
    parking_lot::sync_check::assert_clean("logbus failover suite");
    println!("{}", parking_lot::sync_check::report());
}
