//! Integration tests for the cached partition handles: equivalence with
//! the named lookup path, and correctness under concurrent use.

use logbus::{Broker, Record, TopicConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..200)
}

proptest! {
    /// The handle-based read path (`PartitionReader::fetch` /
    /// `fetch_into`) and broker-level `fetch_into` return byte-identical
    /// results to the named `Broker::fetch`, for arbitrary payloads,
    /// offsets, and fetch sizes.
    #[test]
    fn handle_reads_match_named_fetch(
        payloads in arb_payloads(),
        read_offset in 0u64..250,
        max in 1usize..300,
        segment_bytes in 32usize..512,
    ) {
        let broker = Broker::new();
        broker
            .create_topic("t", TopicConfig::default().segment_bytes(segment_bytes))
            .unwrap();
        for p in &payloads {
            broker.produce("t", 0, Record::from_value(p.clone())).unwrap();
        }
        let offset = read_offset.min(payloads.len() as u64);
        let named = broker.fetch("t", 0, offset, max).unwrap();

        let reader = broker.partition_reader("t", 0).unwrap();
        prop_assert_eq!(&reader.fetch(offset, max).unwrap(), &named);

        let mut via_handle = Vec::new();
        let appended = reader.fetch_into(offset, max, &mut via_handle).unwrap();
        prop_assert_eq!(appended, named.len());
        prop_assert_eq!(&via_handle, &named);

        let mut via_broker = Vec::new();
        let appended = broker.fetch_into("t", 0, offset, max, &mut via_broker).unwrap();
        prop_assert_eq!(appended, named.len());
        prop_assert_eq!(&via_broker, &named);
    }

    /// `fetch_into` appends without clearing: pre-existing buffer contents
    /// survive and the suffix equals the named fetch.
    #[test]
    fn fetch_into_appends_after_existing_records(
        payloads in arb_payloads(),
        max in 1usize..300,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::default()).unwrap();
        for p in &payloads {
            broker.produce("t", 0, Record::from_value(p.clone())).unwrap();
        }
        let reader = broker.partition_reader("t", 0).unwrap();
        let mut buffer = reader.fetch(0, 3).unwrap();
        let prefix = buffer.clone();
        let appended = reader.fetch_into(0, max, &mut buffer).unwrap();
        prop_assert_eq!(&buffer[..prefix.len()], &prefix[..]);
        prop_assert_eq!(&buffer[prefix.len()..], &broker.fetch("t", 0, 0, max).unwrap()[..]);
        prop_assert_eq!(buffer.len(), prefix.len() + appended);
    }
}

/// Several threads producing through clones of one `PartitionWriter`
/// while a reader thread drains the partition: offsets stay dense, every
/// record arrives exactly once, and `LogAppendTime` is monotone.
#[test]
fn concurrent_handle_producers_and_reader() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 2_000;
    const TOTAL: u64 = WRITERS as u64 * PER_WRITER;

    let broker = Broker::new();
    broker.create_topic("t", TopicConfig::default()).unwrap();
    let writer = Arc::new(broker.partition_writer("t", 0).unwrap());

    let producers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let writer = writer.clone();
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    writer
                        .produce(Record::from_value(format!("w{w}-{i}")))
                        .unwrap();
                }
            })
        })
        .collect();

    let reader = broker.partition_reader("t", 0).unwrap();
    let drain = std::thread::spawn(move || {
        let mut seen = Vec::new();
        let mut offset = 0u64;
        let mut buffer = Vec::new();
        while seen.len() < TOTAL as usize {
            buffer.clear();
            let appended = reader.fetch_into(offset, 512, &mut buffer).unwrap();
            if appended == 0 {
                std::thread::yield_now();
                continue;
            }
            offset = buffer.last().unwrap().offset + 1;
            seen.append(&mut buffer);
        }
        seen
    });

    for p in producers {
        p.join().unwrap();
    }
    let seen = drain.join().unwrap();

    assert_eq!(seen.len() as u64, TOTAL);
    // Dense offsets: 0..TOTAL with no gaps or duplicates.
    for (i, stored) in seen.iter().enumerate() {
        assert_eq!(stored.offset, i as u64);
    }
    // Monotone broker-side append stamps.
    assert!(seen.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    // Each writer's own records arrive in its send order.
    for w in 0..WRITERS {
        let prefix = format!("w{w}-");
        let mine: Vec<_> = seen
            .iter()
            .filter(|s| s.record.value.starts_with(prefix.as_bytes()))
            .collect();
        assert_eq!(mine.len() as u64, PER_WRITER);
        for (i, stored) in mine.iter().enumerate() {
            let expected = format!("w{w}-{i}");
            assert_eq!(&stored.record.value[..], expected.as_bytes());
        }
    }
}

/// Handle-based and named produces interleaved from different threads
/// still yield dense offsets and a totally ordered log.
#[test]
fn mixed_named_and_handle_producers() {
    const PER_SIDE: u64 = 3_000;

    let broker = Broker::new();
    broker.create_topic("t", TopicConfig::default()).unwrap();
    let writer = broker.partition_writer("t", 0).unwrap();

    let named_broker = broker.clone();
    let named = std::thread::spawn(move || {
        for i in 0..PER_SIDE {
            named_broker
                .produce("t", 0, Record::from_value(format!("n{i}")))
                .unwrap();
        }
    });
    let handled = std::thread::spawn(move || {
        for i in 0..PER_SIDE {
            writer.produce(Record::from_value(format!("h{i}"))).unwrap();
        }
    });
    named.join().unwrap();
    handled.join().unwrap();

    let all = broker.fetch("t", 0, 0, (2 * PER_SIDE) as usize).unwrap();
    assert_eq!(all.len() as u64, 2 * PER_SIDE);
    for (i, stored) in all.iter().enumerate() {
        assert_eq!(stored.offset, i as u64);
    }
    assert!(all.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
}
