//! Property-based tests for the broker's core invariants.

use logbus::{
    Broker, Cluster, ClusterConfig, Consumer, ManualClock, Producer, ProducerConfig, Record,
    TopicConfig,
};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..200)
}

proptest! {
    /// Offsets are dense and fetch returns exactly what was produced, in
    /// order, regardless of how the producer batches.
    #[test]
    fn produce_fetch_roundtrip(payloads in arb_payloads(), batch in 1usize..64) {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::default()).unwrap();
        let mut producer = Producer::with_config(
            broker.clone(),
            ProducerConfig { batch_records: batch, ..ProducerConfig::default() },
        );
        for p in &payloads {
            producer.send("t", Record::from_value(p.clone())).unwrap();
        }
        producer.flush().unwrap();

        let fetched = broker.fetch("t", 0, 0, payloads.len() + 10).unwrap();
        prop_assert_eq!(fetched.len(), payloads.len());
        for (i, (stored, sent)) in fetched.iter().zip(&payloads).enumerate() {
            prop_assert_eq!(stored.offset, i as u64);
            prop_assert_eq!(&stored.record.value[..], &sent[..]);
        }
    }

    /// LogAppendTime stamps never decrease along a partition.
    #[test]
    fn append_time_is_monotone(payloads in arb_payloads(), segment_bytes in 32usize..4096) {
        let broker = Broker::with_clock(Arc::new(ManualClock::new(0)));
        broker
            .create_topic("t", TopicConfig::default().segment_bytes(segment_bytes))
            .unwrap();
        for p in &payloads {
            broker.produce("t", 0, Record::from_value(p.clone())).unwrap();
        }
        let fetched = broker.fetch("t", 0, 0, payloads.len()).unwrap();
        prop_assert!(fetched.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    /// A consumer polling with arbitrary poll sizes sees every record
    /// exactly once, in order.
    #[test]
    fn consumer_sees_everything_once(
        payloads in arb_payloads(),
        poll_sizes in prop::collection::vec(1usize..50, 1..100),
    ) {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::default()).unwrap();
        for p in &payloads {
            broker.produce("t", 0, Record::from_value(p.clone())).unwrap();
        }
        let mut consumer = Consumer::new(broker);
        consumer.assign("t", 0).unwrap();
        let mut seen = Vec::new();
        let mut sizes = poll_sizes.iter().cycle();
        while seen.len() < payloads.len() {
            let batch = consumer.poll(*sizes.next().unwrap()).unwrap();
            prop_assert!(!batch.is_empty(), "poll stalled before draining the topic");
            seen.extend(batch);
        }
        prop_assert_eq!(seen.len(), payloads.len());
        for (i, stored) in seen.iter().enumerate() {
            prop_assert_eq!(stored.offset, i as u64);
            prop_assert_eq!(&stored.record.value[..], &payloads[i][..]);
        }
        prop_assert!(consumer.poll(10).unwrap().is_empty());
    }

    /// Segment rolling never changes what reads observe.
    #[test]
    fn segment_size_is_transparent(
        payloads in arb_payloads(),
        segment_bytes in 32usize..512,
        read_offset in 0u64..50,
    ) {
        let small = Broker::new();
        small
            .create_topic("t", TopicConfig::default().segment_bytes(segment_bytes))
            .unwrap();
        let big = Broker::new();
        big.create_topic("t", TopicConfig::default()).unwrap();
        for p in &payloads {
            small.produce("t", 0, Record::from_value(p.clone())).unwrap();
            big.produce("t", 0, Record::from_value(p.clone())).unwrap();
        }
        let offset = read_offset.min(payloads.len() as u64);
        let a = small.fetch("t", 0, offset, 1000).unwrap();
        let b = big.fetch("t", 0, offset, 1000).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.offset, y.offset);
            prop_assert_eq!(&x.record.value[..], &y.record.value[..]);
        }
    }

    /// Replicated topics converge: every replica stores the same record
    /// sequence as the leader.
    #[test]
    fn replicas_converge(payloads in arb_payloads(), brokers in 2u32..5) {
        let cluster = Cluster::new(ClusterConfig { brokers });
        cluster
            .create_topic("t", TopicConfig::default().replication_factor(brokers))
            .unwrap();
        for p in &payloads {
            cluster.produce("t", 0, Record::from_value(p.clone())).unwrap();
        }
        let leader = cluster.leader_of("t", 0).unwrap();
        let reference = cluster.broker(leader).fetch("t", 0, 0, payloads.len()).unwrap();
        for b in 0..brokers as usize {
            let replica = cluster.broker(b).fetch("t", 0, 0, payloads.len()).unwrap();
            prop_assert_eq!(replica.len(), reference.len());
            for (x, y) in replica.iter().zip(&reference) {
                prop_assert_eq!(x.offset, y.offset);
                prop_assert_eq!(&x.record.value[..], &y.record.value[..]);
            }
        }
    }

    /// Retention keeps a suffix of the log: surviving records keep their
    /// offsets and the newest record is always retained.
    #[test]
    fn retention_keeps_suffix(
        count in 1u64..300,
        limit in 1u64..50,
        segment_bytes in 32usize..256,
    ) {
        let broker = Broker::new();
        broker
            .create_topic(
                "t",
                TopicConfig::default()
                    .segment_bytes(segment_bytes)
                    .retention_records(limit),
            )
            .unwrap();
        for i in 0..count {
            broker.produce("t", 0, Record::from_value(format!("r{i}"))).unwrap();
        }
        let earliest = broker.topic("t").unwrap().earliest_offset(0).unwrap();
        let latest = broker.latest_offset("t", 0).unwrap();
        prop_assert_eq!(latest, count);
        let fetched = broker.fetch("t", 0, earliest, count as usize).unwrap();
        prop_assert_eq!(fetched.len() as u64, latest - earliest);
        for stored in &fetched {
            let expected = format!("r{}", stored.offset);
            prop_assert_eq!(&stored.record.value[..], expected.as_bytes());
        }
    }

    /// Interleaved append/fetch over recycled segment storage never
    /// aliases across records: views fetched in one round are pinned
    /// while retention recycles old segments and later appends draw the
    /// same arena chunks and batch vectors back out of the pools. Every
    /// pinned view must still hold the exact bytes it held when fetched.
    #[test]
    fn recycled_segment_buffers_never_alias_live_views(
        rounds in 4usize..20,
        batch in 1usize..32,
        payload_len in 1usize..160,
    ) {
        let broker = Broker::new();
        // Tiny segments + tight retention force constant segment
        // turnover, so arena chunks and record vectors recycle while
        // some fetched views stay alive.
        broker
            .create_topic(
                "t",
                TopicConfig::default()
                    .segment_bytes(512)
                    .retention_records(64),
            )
            .unwrap();
        let writer = broker.partition_writer("t", 0).unwrap();
        let reader = broker.partition_reader("t", 0).unwrap();
        // (offset, snapshot at fetch time, live zero-copy view)
        let mut held: Vec<(u64, Vec<u8>, bytes::Bytes)> = Vec::new();
        let mut fetch_buffer = Vec::new();
        for round in 0..rounds {
            let mut records = logbus::pool::record_vec();
            for i in 0..batch {
                // Distinct fill per record so aliasing is detectable.
                let fill = (round * 37 + i * 5 + 1) as u8;
                records.push(Record::from_value(vec![fill; payload_len]));
            }
            let base = writer.produce_batch_drain(&mut records).unwrap();
            logbus::pool::recycle_record_vec(records);
            fetch_buffer.clear();
            reader.fetch_into(base, batch, &mut fetch_buffer).unwrap();
            prop_assert_eq!(fetch_buffer.len(), batch);
            // Pin every other round's views; drop the rest so their
            // chunks actually return to the pool and get reused.
            if round % 2 == 0 {
                for stored in fetch_buffer.drain(..) {
                    held.push((
                        stored.offset,
                        stored.record.value.to_vec(),
                        stored.record.value,
                    ));
                }
            }
        }
        for (offset, snapshot, view) in &held {
            prop_assert_eq!(
                &view[..],
                &snapshot[..],
                "view at offset {} changed after segment recycling",
                offset
            );
        }
    }
}

fn arb_keyed_payloads() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    prop::collection::vec(
        (
            prop::collection::vec(any::<u8>(), 0..24),
            prop::collection::vec(any::<u8>(), 0..48),
        ),
        1..150,
    )
}

proptest! {
    /// Both producer tiers — per-record `send` and batched `send_batch`
    /// — route identical keys to identical partitions for any partition
    /// count, and both agree with the shared `partition_for_key`
    /// partitioner the benchmark's parallel load generators use.
    #[test]
    fn producer_tiers_route_keys_identically(
        keyed in arb_keyed_payloads(),
        partitions in 1u32..32,
        batch in 1usize..64,
    ) {
        let broker = Broker::new();
        for topic in ["per-record", "batched"] {
            broker
                .create_topic(topic, TopicConfig::default().partitions(partitions))
                .unwrap();
        }
        let config = ProducerConfig {
            batch_records: batch,
            partitioner: logbus::Partitioner::KeyHash,
            ..ProducerConfig::default()
        };

        let mut per_record = Producer::with_config(broker.clone(), config.clone());
        for (key, value) in &keyed {
            per_record
                .send("per-record", Record::from_key_value(key.clone(), value.clone()))
                .unwrap();
        }
        per_record.flush().unwrap();

        let mut batched = Producer::with_config(broker.clone(), config);
        let mut records: Vec<Record> = keyed
            .iter()
            .map(|(key, value)| Record::from_key_value(key.clone(), value.clone()))
            .collect();
        batched.send_batch("batched", &mut records).unwrap();
        batched.flush().unwrap();

        for p in 0..partitions {
            let a = broker.fetch("per-record", p, 0, keyed.len() + 1).unwrap();
            let b = broker.fetch("batched", p, 0, keyed.len() + 1).unwrap();
            prop_assert_eq!(a.len(), b.len(), "partition {} diverged", p);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.record.value[..], &y.record.value[..]);
                // ... and the partition each record landed on is the
                // shared partitioner's verdict for its key.
                let key = x.record.key.as_ref().expect("keyed record");
                prop_assert_eq!(logbus::partition_for_key(key, partitions), p);
            }
        }
    }

    /// Any join/leave churn converges to a disjoint cover: after the
    /// survivors quiesce, every partition is owned by exactly one
    /// member, assignments are balanced to within one partition, and
    /// all members agree on the generation.
    #[test]
    fn rebalance_converges_to_disjoint_cover(
        partitions in 1u32..16,
        joiners in 2usize..6,
        leaver_mask in any::<u8>(),
        round_robin in any::<bool>(),
    ) {
        use logbus::{AssignmentStrategy, Bus, GroupMember};

        let broker = Broker::new();
        broker
            .create_topic("t", TopicConfig::default().partitions(partitions))
            .unwrap();
        let bus: Arc<dyn Bus> = Arc::new(broker.clone());
        let strategy = if round_robin {
            AssignmentStrategy::RoundRobin
        } else {
            AssignmentStrategy::Range
        };

        let mut members: Vec<GroupMember> = (0..joiners)
            .map(|i| {
                GroupMember::join(
                    bus.clone(),
                    "g",
                    format!("m{i}"),
                    &["t"],
                    strategy,
                )
                .unwrap()
            })
            .collect();
        // Leave at least one member in the group.
        let mut keep: Vec<bool> = (0..joiners)
            .map(|i| leaver_mask & (1 << i) != 0)
            .collect();
        if keep.iter().all(|k| !k) {
            keep[0] = true;
        }
        for (member, keep) in members.iter_mut().zip(&keep) {
            if !keep {
                member.leave().unwrap();
            }
        }
        let mut survivors: Vec<GroupMember> = members
            .into_iter()
            .zip(keep)
            .filter_map(|(m, keep)| keep.then_some(m))
            .collect();

        // Quiesce: claims release asymmetrically, so poll everyone
        // until a full round changes nothing.
        for _ in 0..32 {
            let mut changed = false;
            for member in &mut survivors {
                changed |= member
                    .poll_rebalance(|_| Ok(()), |_| Ok(()))
                    .unwrap();
            }
            if !changed {
                break;
            }
        }

        let mut owned: Vec<u32> = survivors
            .iter()
            .flat_map(|m| m.owned().iter().map(|tp| tp.partition))
            .collect();
        owned.sort_unstable();
        prop_assert_eq!(owned, (0..partitions).collect::<Vec<_>>());
        let sizes: Vec<usize> = survivors.iter().map(|m| m.owned().len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced assignment: {:?}", sizes);
        let generation = survivors[0].generation();
        prop_assert!(survivors.iter().all(|m| m.generation() == generation));
    }
}
