//! Review repro: stale `synced` on a dead replica survives an election
//! that picks a less-caught-up leader, letting the restarted replica
//! rejoin with a divergent log and later serve different bytes below
//! the old high-watermark.

use logbus::{Cluster, ClusterConfig, FaultPlan, Record, TopicConfig};

#[test]
fn committed_reads_diverge_after_stale_synced_rejoin() {
    let cluster = Cluster::new(ClusterConfig { brokers: 3 });
    cluster
        .create_topic("t", TopicConfig::default().replication_factor(3))
        .unwrap();

    // Record 0 fully replicated.
    cluster.produce("t", 0, Record::from_value("a")).unwrap();

    let leader = cluster.leader_of("t", 0).unwrap();
    // Replica positions are (leader, leader+1, leader+2) mod 3.
    let b = (leader + 1) % 3;
    let c = (leader + 2) % 3;

    // Follower C errors every replication fetch: stays alive and
    // in-sync, but lags.
    let mut plan = FaultPlan::seeded(1);
    plan.produce_error = 1.0;
    plan.fetch_error = 0.0;
    plan.metadata_error = 0.0;
    plan.ack_loss = 0.0;
    plan.duplicate = 0.0;
    plan.extra_latency = 0.0;
    plan.max_consecutive = u32::MAX;
    cluster.broker(c).install_fault_plan(plan);

    // Record 1 = "b": lands on leader and B (synced=2), C lags at 1.
    let writer = cluster
        .partition_writer("t", 0)
        .unwrap()
        .with_acks(logbus::Acks::Leader);
    writer.produce(Record::from_value("b")).unwrap();
    assert_eq!(cluster.high_watermark_of("t", 0).unwrap(), 1);

    cluster.broker(c).clear_fault_plan();

    // Leader and B die; C (lagging, synced=1) is the only candidate.
    cluster.kill_broker(leader);
    cluster.kill_broker(b);

    // New record 1 = "x" on C's timeline.
    cluster.produce("t", 0, Record::from_value("x")).unwrap();
    let committed = cluster.fetch("t", 0, 0, 10).unwrap();
    assert_eq!(&committed[1].record.value[..], b"x");
    let hw = cluster.high_watermark_of("t", 0).unwrap();
    assert_eq!(hw, 2);

    // B restarts: truncated only to its stale synced (=2), keeping "b".
    cluster.restart_broker(b);
    // Next produce "catches B up" starting from its stale synced.
    cluster.produce("t", 0, Record::from_value("y")).unwrap();

    // C dies; B gets elected.
    cluster.kill_broker(c);

    let reread = cluster.fetch("t", 0, 0, 10).unwrap();
    // Offset 1 was committed-read as "x"; a correct log never changes it.
    assert_eq!(
        &reread[1].record.value[..],
        b"x",
        "committed offset 1 changed bytes after failover: {:?}",
        reread
            .iter()
            .map(|r| String::from_utf8_lossy(&r.record.value).into_owned())
            .collect::<Vec<_>>()
    );
}
