//! Minimal JSON writing helpers.
//!
//! The workspace builds offline with no serialization dependency, so the
//! few JSON producers (metric snapshots, span timelines, the reproduce
//! binary's `--obs-json` export) share these hand-rolled escapes instead
//! of each inventing their own.

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_string(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("unicode ✓"), "\"unicode ✓\"");
    }
}
