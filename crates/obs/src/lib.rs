//! Unified observability: metrics registry + hierarchical span tracing.
//!
//! Every layer of the workspace (broker, engines, abstraction-layer
//! runners, benchmark driver) reports into one global [`Obs`] instance,
//! so a single snapshot attributes end-to-end cost stage by stage —
//! the quantitative counterpart to the paper's qualitative execution-plan
//! comparison (Figs. 12–13).
//!
//! # Cost model
//!
//! Instrumentation is **off by default**. Every hot-path site is guarded
//! by [`enabled()`], a single relaxed atomic load plus a predictable
//! branch; with the `noop` cargo feature the guard is a compile-time
//! `false` and the optimizer deletes the site outright. Turning the
//! switch on ([`set_enabled`]) activates histograms and spans; plain
//! counters owned by individual components (for example the producer's
//! sent/dropped counts) stay live regardless because they are part of
//! component semantics, not optional telemetry.
//!
//! # Usage
//!
//! ```
//! obs::set_enabled(true); // inert under the `noop` feature
//! {
//!     let _outer = obs::span("send");
//!     obs::counter("records.sent").add(128);
//!     obs::histogram("produce.micros").record(42);
//!     let _inner = obs::span("flush"); // nests under `send`
//! }
//! let snap = obs::global().registry().snapshot();
//! assert_eq!(snap.counters["records.sent"], 128);
//! assert_eq!(snap.histograms["produce.micros"].count, 1);
//! // Spans recorded only while the switch is on (and not `noop`-compiled).
//! let spans = obs::global().tracer().snapshot_spans();
//! assert_eq!(spans.len(), if obs::enabled() { 2 } else { 0 });
//! obs::set_enabled(false);
//! ```

pub mod json;
pub mod metrics;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use span::{SpanGuard, SpanRecord, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Global runtime switch; see [`enabled`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is currently active.
///
/// With the `noop` feature this is a compile-time `false`, so guarded
/// sites vanish entirely; otherwise it is one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        false
    } else {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Flips the runtime switch. A no-op under the `noop` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide observability sink: one registry, one tracer.
#[derive(Debug, Default)]
pub struct Obs {
    registry: Registry,
    tracer: Tracer,
}

impl Obs {
    /// Creates an empty instance (tests use private instances; production
    /// code goes through [`global`]).
    pub fn new() -> Self {
        Obs::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Zeroes all metric values and clears collected spans. Handles
    /// already resolved by components stay connected (values reset, the
    /// instruments themselves survive).
    pub fn reset(&self) {
        self.registry.reset();
        self.tracer.clear();
    }
}

/// The process-wide [`Obs`] instance.
pub fn global() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::new)
}

/// Get-or-create a counter in the global registry.
pub fn counter(name: &str) -> Counter {
    global().registry().counter(name)
}

/// Get-or-create a gauge in the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().registry().gauge(name)
}

/// Get-or-create a histogram in the global registry.
pub fn histogram(name: &str) -> Histogram {
    global().registry().histogram(name)
}

/// Opens a span on the global tracer. Returns an inert guard (no
/// allocation, no clock read) while instrumentation is disabled.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if enabled() {
        global().tracer().span(name)
    } else {
        SpanGuard::inert()
    }
}

/// Records an instantaneous event (a zero-duration span) with structured
/// fields under the current span, if instrumentation is enabled.
#[inline]
pub fn event(name: &str, fields: &[(&str, String)]) {
    if enabled() {
        global().tracer().event(name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that touch the global switch serialize on this lock so the
    /// enabled window of one cannot leak into another.
    static SWITCH_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn switch_round_trips() {
        let _guard = SWITCH_LOCK.lock();
        // Never leave the global switch on: other tests share it.
        let before = enabled();
        set_enabled(true);
        if cfg!(feature = "noop") {
            assert!(!enabled());
        } else {
            assert!(enabled());
        }
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = SWITCH_LOCK.lock();
        set_enabled(false);
        let drained = global().tracer().snapshot_spans().len();
        {
            let _g = span("should-not-record");
        }
        assert_eq!(global().tracer().snapshot_spans().len(), drained);
    }

    #[test]
    fn counter_handle_survives_reset() {
        // Private instance: resetting the *global* Obs would race with
        // other tests in this crate.
        let obs = Obs::new();
        let c = obs.registry().counter("obs.test.reset");
        c.add(5);
        obs.reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counters["obs.test.reset"], 2);
    }
}
