//! Lock-light metric instruments and the registry that names them.
//!
//! Instruments are thin handles over shared atomics: recording never
//! takes a lock, and handles are resolved once (one registry-mutex hit)
//! then cached by the component that owns them. Snapshots are plain data
//! with value-wise [`Snapshot::merge`], so per-run snapshots can be
//! folded into campaign totals.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Sub-bucket precision bits of the log-linear histogram layout: every
/// power-of-two range is split into `2^SUB_BITS` linear sub-buckets, so
/// the relative quantile error is bounded by `1 / 2^SUB_BITS` (12.5 %)
/// instead of the factor-of-two error of plain log2 buckets. This is
/// what makes sub-millisecond latency percentiles meaningful: a 500 µs
/// observation lands in a 32 µs-wide bucket, not a 256 µs-wide one.
pub const SUB_BITS: u32 = 3;

/// Linear sub-buckets per power-of-two range (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Values below the cutoff get one exact bucket each (indices `0..16`
/// hold exactly the value equal to the index).
const LINEAR_CUTOFF: u64 = 2 * SUB_BUCKETS as u64;

/// First power-of-two exponent served by the log-linear region.
const FIRST_MAJOR: usize = SUB_BITS as usize + 1;

/// Number of histogram buckets: `LINEAR_CUTOFF` exact small-value
/// buckets plus `SUB_BUCKETS` per power-of-two range up to `2^63`,
/// covering the full `u64` range (see [`bucket_index`]).
pub const BUCKETS: usize = LINEAR_CUTOFF as usize + (63 - SUB_BITS as usize) * SUB_BUCKETS;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter, not attached to any registry (used for
    /// per-instance semantics like a producer's own sent/dropped counts).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that can move both ways (queue depths, in-flight requests).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Smallest observed value; `u64::MAX` while empty.
    min: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

/// A log-linear bucketed latency/size histogram (HDR-style: log2 major
/// buckets, [`SUB_BUCKETS`] linear sub-buckets each).
///
/// Recording is three relaxed atomic adds plus CAS-free max/min updates
/// — no locks, no allocation. Quantiles are estimated from bucket upper
/// bounds, clamped to the observed minimum and maximum.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

/// Bucket index for a recorded value: values below [`SUB_BUCKETS`]` * 2`
/// map exactly to their own bucket; larger values map to
/// `(major, sub)` where `major` is the position of the leading bit and
/// `sub` the next [`SUB_BITS`] bits of the mantissa.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let major = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (major - SUB_BITS as usize)) & (SUB_BUCKETS as u64 - 1)) as usize;
        LINEAR_CUTOFF as usize + (major - FIRST_MAJOR) * SUB_BUCKETS + sub
    }
}

/// Largest value a bucket can hold (its quantile representative).
pub fn bucket_high(i: usize) -> u64 {
    if i < LINEAR_CUTOFF as usize {
        return i as u64;
    }
    let rel = i - LINEAR_CUTOFF as usize;
    let major = FIRST_MAJOR + rel / SUB_BUCKETS;
    let sub = (rel % SUB_BUCKETS) as u64;
    let shift = (major - SUB_BITS as usize) as u32;
    let low = (SUB_BUCKETS as u64 + sub) << shift;
    low + ((1u64 << shift) - 1)
}

/// Smallest value a bucket can hold.
pub fn bucket_low(i: usize) -> u64 {
    if i < LINEAR_CUTOFF as usize {
        return i as u64;
    }
    let rel = i - LINEAR_CUTOFF as usize;
    let major = FIRST_MAJOR + rel / SUB_BUCKETS;
    let sub = (rel % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (major - SUB_BITS as usize)
}

impl Histogram {
    /// A free-standing histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the count from the bucket mass rather than the shared
        // counter: a recorder bumps its bucket before the counter, so a
        // mid-flight snapshot could otherwise see the two disagree.
        // Quantiles clamp to `[min, max]`, so the remaining per-field
        // races never push an estimate outside the observed range.
        let count: u64 = buckets.iter().sum();
        let max = inner.max.load(Ordering::Relaxed);
        let raw_min = inner.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            max,
            // Normalize the empty sentinel (and a mid-record racy read)
            // so `min <= max` always holds on a snapshot.
            min: if count == 0 { 0 } else { raw_min.min(max) },
        }
    }

    fn reset(&self) {
        let inner = &*self.0;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum.store(0, Ordering::Relaxed);
        inner.max.store(0, Ordering::Relaxed);
        inner.min.store(u64::MAX, Ordering::Relaxed);
    }
}

/// Plain-data copy of a [`Histogram`], mergeable and serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: 0,
        }
    }

    /// Estimated quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped
    /// to the observed `[min, max]` range. The clamp applies to **every**
    /// quantile, so any quantile that lands in the observed-max bucket
    /// reports the true observed max (not the bucket edge above it), and
    /// a quantile landing in the observed-min bucket never reports a
    /// value below the smallest observation. Returns 0 for an empty
    /// snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate — the coordinated-omission-sensitive
    /// tail the latency report quotes.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` (bucket-wise add; commutative and
    /// associative, so merge order never matters).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        // Empty sides carry the min sentinel 0, which must not poison
        // the merged minimum.
        if other.count > 0 {
            self.min = if self.count > 0 {
                self.min.min(other.min)
            } else {
                other.min
            };
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Name → instrument map. Lookup takes a mutex; recording through a
/// resolved handle does not, so components resolve once and cache.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        match inner.counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::new();
                inner.counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        match inner.gauges.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::new();
                inner.gauges.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock();
        match inner.histograms.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::new();
                inner.histograms.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Zeroes every registered instrument **in place**: handles held by
    /// components remain attached (a clear-the-map reset would silently
    /// disconnect them).
    pub fn reset(&self) {
        let inner = self.inner.lock();
        for c in inner.counters.values() {
            c.reset();
        }
        for g in inner.gauges.values() {
            g.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }

    /// Copies every instrument's current value into a timestamped
    /// [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        Snapshot {
            at_unix_micros: unix_micros(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Microseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as u64)
}

/// A timestamped, mergeable copy of a registry's instruments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Capture time, microseconds since the Unix epoch.
    pub at_unix_micros: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise, the timestamp keeps the later capture. The
    /// value part is commutative: `merge(a,b) == merge(b,a)`.
    pub fn merge(&mut self, other: &Snapshot) {
        self.at_unix_micros = self.at_unix_micros.max(other.at_unix_micros);
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(v);
        }
    }

    /// Serializes to a JSON object (histograms expand to summary stats
    /// plus raw buckets).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"at_unix_micros\":");
        out.push_str(&self.at_unix_micros.to_string());
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(&mut out, k);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.p999(),
            ));
            // Trailing zero buckets carry no information; trim them so
            // the JSON stays compact.
            let last = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            for (j, c) in h.buckets[..last].iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_layout_is_log_linear() {
        // Small values are exact: one bucket per value below the cutoff.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize, "exact bucket for {v}");
            assert_eq!(bucket_high(v as usize), v);
            assert_eq!(bucket_low(v as usize), v);
        }
        // Buckets tile the u64 range: consecutive indices, no gaps.
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_low(i + 1),
                bucket_high(i) + 1,
                "bucket {i} upper edge must abut bucket {} lower edge",
                i + 1
            );
        }
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
        // Every bucket contains its own edges.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(bucket_high(i)), i, "high edge of bucket {i}");
        }
        // Relative bucket width is bounded by 1/SUB_BUCKETS.
        for &v in &[100u64, 999, 65_537, 1_000_000, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i) + 1;
            assert!(
                (width as f64) <= (bucket_low(i) as f64) / SUB_BUCKETS as f64 + 1.0,
                "bucket width {width} too coarse at {v}"
            );
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1116);
        assert_eq!(s.max, 1000);
        // p50 rank = 3 → third value (3) has its own exact bucket.
        assert_eq!(s.p50(), 3);
        // Top quantiles clamp to the observed max, not the bucket edge.
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.p99() <= 1000);
        assert!((s.mean() - 186.0).abs() < 0.001);
        assert_eq!(s.min, 1);
    }

    #[test]
    fn all_quantiles_in_max_bucket_clamp_to_observed_max() {
        // Every observation is the same off-edge value: whatever bucket
        // it lands in, every quantile — p50 and p95 included, not just
        // p99 — must report the observed max, not the bucket's upper
        // edge (1000 lives in the 960..=1023 bucket).
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1000);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 1000, "quantile({q})");
        }
        assert_eq!(s.p999(), 1000);
    }

    #[test]
    fn low_quantiles_clamp_to_observed_min() {
        let h = Histogram::new();
        h.record(970); // same bucket as 1000 (960..=1023)
        for _ in 0..99 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.min, 970);
        assert!(s.quantile(0.0) >= 970);
        assert!(s.p50() <= 1000);
    }

    /// Satellite: merge + quantile estimates under concurrent observers
    /// — snapshots taken while recorders are still running must stay
    /// internally consistent (count equals bucket mass, quantiles inside
    /// `[min, max]`), and the post-join merged view must be exact.
    #[test]
    fn concurrent_observers_merge_and_quantiles() {
        let shared = Histogram::new();
        let threads = 8usize;
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let shared = shared.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Spread across buckets: value depends on both
                        // thread and iteration.
                        shared.record((t as u64 + 1) * 100 + (i % 50));
                    }
                });
            }
            // Mid-flight snapshots: never torn beyond per-field races.
            for _ in 0..50 {
                let s = shared.snapshot();
                assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
                if s.count > 0 {
                    assert!(s.min <= s.max);
                    let p = s.p999();
                    assert!(p >= s.min && p <= s.max);
                    assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
                }
                std::thread::yield_now();
            }
        });
        let total = shared.snapshot();
        assert_eq!(total.count, threads as u64 * per_thread);
        assert_eq!(total.min, 100);
        assert_eq!(total.max, 849);

        // Independent per-thread histograms merged afterwards equal the
        // shared one observed concurrently.
        let parts: Vec<HistogramSnapshot> = (0..threads)
            .map(|t| {
                let h = Histogram::new();
                for i in 0..per_thread {
                    h.record((t as u64 + 1) * 100 + (i % 50));
                }
                h.snapshot()
            })
            .collect();
        let mut merged = HistogramSnapshot::empty();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.buckets, total.buckets);
        assert_eq!(merged.min, total.min);
        assert_eq!(merged.max, total.max);
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), total.quantile(q), "quantile({q})");
        }
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x").get(), 5);
        r.histogram("h").record(7);
        r.gauge("g").set(-2);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x"], 5);
        assert_eq!(snap.gauges["g"], -2);
        assert_eq!(snap.histograms["h"].count, 1);
        assert!(snap.at_unix_micros > 0);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let r1 = Registry::new();
        r1.counter("c").add(1);
        r1.histogram("h").record(10);
        let r2 = Registry::new();
        r2.counter("c").add(2);
        r2.counter("only2").add(9);
        r2.histogram("h").record(20);
        let mut a = r1.snapshot();
        a.merge(&r2.snapshot());
        assert_eq!(a.counters["c"], 3);
        assert_eq!(a.counters["only2"], 9);
        assert_eq!(a.histograms["h"].count, 2);
        assert_eq!(a.histograms["h"].max, 20);
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let r = Registry::new();
        r.counter("a.b").add(3);
        r.gauge("depth").set(-1);
        r.histogram("lat \"q\"").record(5);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.b\":3"));
        assert!(json.contains("\"depth\":-1"));
        assert!(json.contains("\\\"q\\\""));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
        assert_eq!(s.max, 7999);
    }

    proptest! {
        /// Quantiles are monotone in q and bracketed by [0, max].
        #[test]
        fn quantile_monotonicity(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
            let mut prev = 0u64;
            for &q in &qs {
                let cur = s.quantile(q);
                prop_assert!(cur >= prev, "quantile({q}) = {cur} < previous {prev}");
                prop_assert!(cur <= s.max);
                prev = cur;
            }
            prop_assert_eq!(s.quantile(1.0), s.max);
        }

        /// merge(a, b) == merge(b, a) for histogram snapshots.
        #[test]
        fn histogram_merge_commutes(
            a in prop::collection::vec(0u64..1_000_000, 0..100),
            b in prop::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let ha = Histogram::new();
            for &v in &a { ha.record(v); }
            let hb = Histogram::new();
            for &v in &b { hb.record(v); }
            let (sa, sb) = (ha.snapshot(), hb.snapshot());
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(ab, ba);
        }

        /// Registry-level snapshot merge commutes on the value part.
        #[test]
        fn snapshot_merge_commutes(
            xs in prop::collection::vec((0u8..4, 0u64..1000), 0..40),
            ys in prop::collection::vec((0u8..4, 0u64..1000), 0..40),
        ) {
            let build = |pairs: &[(u8, u64)]| {
                let r = Registry::new();
                for &(k, v) in pairs {
                    r.counter(&format!("c{k}")).add(v);
                    r.histogram(&format!("h{k}")).record(v);
                }
                r.snapshot()
            };
            let (sa, sb) = (build(&xs), build(&ys));
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            ab.at_unix_micros = 0;
            ba.at_unix_micros = 0;
            prop_assert_eq!(ab, ba);
        }
    }
}
