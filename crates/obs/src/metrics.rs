//! Lock-light metric instruments and the registry that names them.
//!
//! Instruments are thin handles over shared atomics: recording never
//! takes a lock, and handles are resolved once (one registry-mutex hit)
//! then cached by the component that owns them. Snapshots are plain data
//! with value-wise [`Snapshot::merge`], so per-run snapshots can be
//! folded into campaign totals.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Number of log2 histogram buckets: bucket `i > 0` holds values `v`
/// with `2^(i-1) <= v < 2^i`; bucket 0 holds zero. 65 buckets cover the
/// full `u64` range.
pub const BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter, not attached to any registry (used for
    /// per-instance semantics like a producer's own sent/dropped counts).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that can move both ways (queue depths, in-flight requests).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed latency/size histogram.
///
/// Recording is three relaxed atomic adds plus a CAS-free max update —
/// no locks, no allocation. Quantiles are estimated from bucket upper
/// bounds, clamped to the observed maximum.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Largest value a bucket can hold (its quantile representative).
pub fn bucket_high(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A free-standing histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        HistogramSnapshot {
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        let inner = &*self.0;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum.store(0, Ordering::Relaxed);
        inner.max.store(0, Ordering::Relaxed);
    }
}

/// Plain-data copy of a [`Histogram`], mergeable and serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Estimated quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped
    /// to the observed maximum. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` (bucket-wise add; commutative and
    /// associative, so merge order never matters).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Name → instrument map. Lookup takes a mutex; recording through a
/// resolved handle does not, so components resolve once and cache.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        match inner.counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::new();
                inner.counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        match inner.gauges.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::new();
                inner.gauges.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock();
        match inner.histograms.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::new();
                inner.histograms.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Zeroes every registered instrument **in place**: handles held by
    /// components remain attached (a clear-the-map reset would silently
    /// disconnect them).
    pub fn reset(&self) {
        let inner = self.inner.lock();
        for c in inner.counters.values() {
            c.reset();
        }
        for g in inner.gauges.values() {
            g.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }

    /// Copies every instrument's current value into a timestamped
    /// [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        Snapshot {
            at_unix_micros: unix_micros(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Microseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as u64)
}

/// A timestamped, mergeable copy of a registry's instruments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Capture time, microseconds since the Unix epoch.
    pub at_unix_micros: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise, the timestamp keeps the later capture. The
    /// value part is commutative: `merge(a,b) == merge(b,a)`.
    pub fn merge(&mut self, other: &Snapshot) {
        self.at_unix_micros = self.at_unix_micros.max(other.at_unix_micros);
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(v);
        }
    }

    /// Serializes to a JSON object (histograms expand to summary stats
    /// plus raw buckets).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"at_unix_micros\":");
        out.push_str(&self.at_unix_micros.to_string());
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(&mut out, k);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
            ));
            // Trailing zero buckets carry no information; trim them so
            // the JSON stays compact.
            let last = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            for (j, c) in h.buckets[..last].iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for k in 1..63 {
            let low = 1u64 << (k - 1);
            let high = (1u64 << k) - 1;
            assert_eq!(bucket_index(low), k, "lower edge of bucket {k}");
            assert_eq!(bucket_index(high), k, "upper edge of bucket {k}");
            assert_eq!(bucket_index(high + 1), k + 1, "first value past bucket {k}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_high(0), 0);
        assert_eq!(bucket_high(1), 1);
        assert_eq!(bucket_high(4), 15);
        assert_eq!(bucket_high(64), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1116);
        assert_eq!(s.max, 1000);
        // p50 rank = 3 → third value (3) lives in bucket 2 (values 2..=3).
        assert_eq!(s.p50(), 3);
        // Top quantiles clamp to the observed max, not the bucket edge.
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.p99() <= 1000);
        assert!((s.mean() - 186.0).abs() < 0.001);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x").get(), 5);
        r.histogram("h").record(7);
        r.gauge("g").set(-2);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x"], 5);
        assert_eq!(snap.gauges["g"], -2);
        assert_eq!(snap.histograms["h"].count, 1);
        assert!(snap.at_unix_micros > 0);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let r1 = Registry::new();
        r1.counter("c").add(1);
        r1.histogram("h").record(10);
        let r2 = Registry::new();
        r2.counter("c").add(2);
        r2.counter("only2").add(9);
        r2.histogram("h").record(20);
        let mut a = r1.snapshot();
        a.merge(&r2.snapshot());
        assert_eq!(a.counters["c"], 3);
        assert_eq!(a.counters["only2"], 9);
        assert_eq!(a.histograms["h"].count, 2);
        assert_eq!(a.histograms["h"].max, 20);
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let r = Registry::new();
        r.counter("a.b").add(3);
        r.gauge("depth").set(-1);
        r.histogram("lat \"q\"").record(5);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.b\":3"));
        assert!(json.contains("\"depth\":-1"));
        assert!(json.contains("\\\"q\\\""));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
        assert_eq!(s.max, 7999);
    }

    proptest! {
        /// Quantiles are monotone in q and bracketed by [0, max].
        #[test]
        fn quantile_monotonicity(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
            let mut prev = 0u64;
            for &q in &qs {
                let cur = s.quantile(q);
                prop_assert!(cur >= prev, "quantile({q}) = {cur} < previous {prev}");
                prop_assert!(cur <= s.max);
                prev = cur;
            }
            prop_assert_eq!(s.quantile(1.0), s.max);
        }

        /// merge(a, b) == merge(b, a) for histogram snapshots.
        #[test]
        fn histogram_merge_commutes(
            a in prop::collection::vec(0u64..1_000_000, 0..100),
            b in prop::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let ha = Histogram::new();
            for &v in &a { ha.record(v); }
            let hb = Histogram::new();
            for &v in &b { hb.record(v); }
            let (sa, sb) = (ha.snapshot(), hb.snapshot());
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(ab, ba);
        }

        /// Registry-level snapshot merge commutes on the value part.
        #[test]
        fn snapshot_merge_commutes(
            xs in prop::collection::vec((0u8..4, 0u64..1000), 0..40),
            ys in prop::collection::vec((0u8..4, 0u64..1000), 0..40),
        ) {
            let build = |pairs: &[(u8, u64)]| {
                let r = Registry::new();
                for &(k, v) in pairs {
                    r.counter(&format!("c{k}")).add(v);
                    r.histogram(&format!("h{k}")).record(v);
                }
                r.snapshot()
            };
            let (sa, sb) = (build(&xs), build(&ys));
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            ab.at_unix_micros = 0;
            ba.at_unix_micros = 0;
            prop_assert_eq!(ab, ba);
        }
    }
}
