//! Hierarchical span tracing: RAII enter/exit timing with implicit
//! parenting and thread-safe collection into one timeline.
//!
//! A [`SpanGuard`] opened while another span is active on the same
//! thread becomes its child (a thread-local stack tracks the current
//! span). Guards record on drop, so a span's duration always covers
//! exactly its lexical scope, panics included. Records from all threads
//! land in one shared timeline that renders as a tree or serializes to
//! JSON.

use crate::metrics::unix_micros;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One completed span (or instantaneous event) in the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the tracer.
    pub id: u64,
    /// Enclosing span's id, if the span had a parent on its thread.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start time, microseconds since the Unix epoch.
    pub start_unix_micros: u64,
    /// Duration in microseconds (0 for events).
    pub duration_micros: u64,
    /// True for instantaneous events, false for real spans.
    pub is_event: bool,
    /// Structured key/value payload.
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    fn json_into(&self, out: &mut String) {
        out.push_str("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"parent\":");
        match self.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":");
        crate::json::write_string(out, &self.name);
        out.push_str(",\"start_unix_micros\":");
        out.push_str(&self.start_unix_micros.to_string());
        out.push_str(",\"duration_micros\":");
        out.push_str(&self.duration_micros.to_string());
        out.push_str(",\"kind\":");
        out.push_str(if self.is_event {
            "\"event\""
        } else {
            "\"span\""
        });
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(out, k);
            out.push(':');
            crate::json::write_string(out, v);
        }
        out.push_str("}}");
    }
}

#[derive(Debug)]
struct TracerInner {
    records: Mutex<Vec<SpanRecord>>,
    next_id: AtomicU64,
}

thread_local! {
    /// Stack of (tracer identity, span id) for implicit parenting. The
    /// tracer identity keeps independent tracers (tests) from adopting
    /// each other's spans as parents.
    static ACTIVE: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Collects spans from all threads into one timeline.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                records: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
            }),
        }
    }
}

impl Tracer {
    /// An empty tracer. Tracer instances are always live; the global
    /// enable switch is applied by the [`crate::span`] front door, not
    /// here, so tests can drive a private tracer directly.
    pub fn new() -> Self {
        Tracer::default()
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Opens a span; it closes (and records) when the guard drops. The
    /// span is parented under the thread's innermost open span from the
    /// same tracer, if any.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with_fields(name, &[])
    }

    /// [`Tracer::span`] with a structured payload attached.
    pub fn span_with_fields(&self, name: &str, fields: &[(&str, String)]) -> SpanGuard {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let me = self.identity();
        let parent = ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(tracer, _)| *tracer == me)
                .map(|(_, id)| *id);
            stack.push((me, id));
            parent
        });
        SpanGuard {
            state: Some(GuardState {
                tracer: self.inner.clone(),
                id,
                parent,
                name: name.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                start_unix_micros: unix_micros(),
                started: Instant::now(),
            }),
        }
    }

    /// Records an instantaneous event under the current span.
    pub fn event(&self, name: &str, fields: &[(&str, String)]) {
        let me = self.identity();
        let parent = ACTIVE.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(tracer, _)| *tracer == me)
                .map(|(_, id)| *id)
        });
        let record = SpanRecord {
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name: name.to_string(),
            start_unix_micros: unix_micros(),
            duration_micros: 0,
            is_event: true,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        self.inner.records.lock().push(record);
    }

    /// The id of the innermost open span on this thread, for explicit
    /// cross-thread parenting via [`Tracer::span_under`].
    pub fn current_span_id(&self) -> Option<u64> {
        let me = self.identity();
        ACTIVE.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(tracer, _)| *tracer == me)
                .map(|(_, id)| *id)
        })
    }

    /// Opens a span with an explicit parent id — the bridge for work
    /// handed to another thread (capture [`Tracer::current_span_id`]
    /// before spawning, parent the worker's spans under it).
    pub fn span_under(&self, parent: Option<u64>, name: &str) -> SpanGuard {
        let mut guard = self.span(name);
        if let Some(state) = guard.state.as_mut() {
            if state.parent.is_none() {
                state.parent = parent;
            }
        }
        guard
    }

    /// Copies the completed timeline, ordered by start time.
    pub fn snapshot_spans(&self) -> Vec<SpanRecord> {
        let mut records = self.inner.records.lock().clone();
        records.sort_by_key(|r| (r.start_unix_micros, r.id));
        records
    }

    /// Removes and returns the completed timeline, ordered by start time.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut records = std::mem::take(&mut *self.inner.records.lock());
        records.sort_by_key(|r| (r.start_unix_micros, r.id));
        records
    }

    /// Discards all completed records.
    pub fn clear(&self) {
        self.inner.records.lock().clear();
    }
}

#[derive(Debug)]
struct GuardState {
    tracer: Arc<TracerInner>,
    id: u64,
    parent: Option<u64>,
    name: String,
    fields: Vec<(String, String)>,
    start_unix_micros: u64,
    started: Instant,
}

/// RAII handle for an open span; records on drop.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    state: Option<GuardState>,
}

impl SpanGuard {
    /// A guard that records nothing — the disabled-path stand-in, free
    /// of clock reads and allocation.
    pub fn inert() -> Self {
        SpanGuard { state: None }
    }

    /// Attaches a field to the span before it closes.
    pub fn field(&mut self, key: &str, value: impl Into<String>) {
        if let Some(state) = self.state.as_mut() {
            state.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let duration_micros = state.started.elapsed().as_micros() as u64;
        let me = Arc::as_ptr(&state.tracer) as usize;
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally the top of the stack; a linear scan keeps things
            // correct if guards are dropped out of order.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(tracer, id)| tracer == me && id == state.id)
            {
                stack.remove(pos);
            }
        });
        state.tracer.records.lock().push(SpanRecord {
            id: state.id,
            parent: state.parent,
            name: state.name,
            start_unix_micros: state.start_unix_micros,
            duration_micros,
            is_event: false,
            fields: state.fields,
        });
    }
}

/// Serializes records to a JSON array (already tree-linked via
/// `parent`).
pub fn spans_to_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 2);
    out.push('[');
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        r.json_into(&mut out);
    }
    out.push(']');
    out
}

/// Renders records as an indented tree, children under parents in
/// start order, durations in milliseconds.
pub fn render_tree(records: &[SpanRecord]) -> String {
    let mut children: std::collections::BTreeMap<Option<u64>, Vec<&SpanRecord>> =
        std::collections::BTreeMap::new();
    for r in records {
        children.entry(r.parent).or_default().push(r);
    }
    for list in children.values_mut() {
        list.sort_by_key(|r| (r.start_unix_micros, r.id));
    }
    let mut out = String::new();
    fn walk(
        out: &mut String,
        children: &std::collections::BTreeMap<Option<u64>, Vec<&SpanRecord>>,
        parent: Option<u64>,
        depth: usize,
    ) {
        let Some(list) = children.get(&parent) else {
            return;
        };
        for r in list {
            for _ in 0..depth {
                out.push_str("  ");
            }
            if r.is_event {
                out.push_str(&format!("· {}", r.name));
            } else {
                out.push_str(&format!(
                    "{} ({:.3} ms)",
                    r.name,
                    r.duration_micros as f64 / 1000.0
                ));
            }
            for (k, v) in &r.fields {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            walk(out, children, Some(r.id), depth + 1);
        }
    }
    walk(&mut out, &children, None, 0);
    // Orphans (parent recorded on another thread's timeline or dropped):
    // print flat so nothing silently disappears.
    let ids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.id).collect();
    for r in records {
        if let Some(p) = r.parent {
            if !ids.contains(&p) {
                out.push_str(&format!(
                    "?~ {} ({:.3} ms) [parent {} missing]\n",
                    r.name,
                    r.duration_micros as f64 / 1000.0,
                    p
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_links_parents() {
        let t = Tracer::new();
        {
            let _a = t.span("a");
            {
                let mut b = t.span("b");
                b.field("k", "v");
            }
            t.event("tick", &[("n", "1".to_string())]);
        }
        let spans = t.snapshot_spans();
        assert_eq!(spans.len(), 3);
        let a = spans.iter().find(|s| s.name == "a").unwrap();
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        let tick = spans.iter().find(|s| s.name == "tick").unwrap();
        assert_eq!(a.parent, None);
        assert_eq!(b.parent, Some(a.id));
        assert_eq!(tick.parent, Some(a.id));
        assert_eq!(tick.duration_micros, 0);
        assert_eq!(b.fields, vec![("k".to_string(), "v".to_string())]);
        // Parent closes after child: duration covers the child.
        assert!(a.duration_micros >= b.duration_micros);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let t = Tracer::new();
        {
            let _a = t.span("a");
        }
        {
            let _b = t.span("b");
        }
        let spans = t.snapshot_spans();
        assert!(spans.iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn independent_tracers_do_not_adopt() {
        let t1 = Tracer::new();
        let t2 = Tracer::new();
        let _outer = t1.span("outer");
        {
            let _inner = t2.span("inner");
        }
        drop(_outer);
        let inner = t2.drain();
        assert_eq!(inner.len(), 1);
        assert_eq!(
            inner[0].parent, None,
            "span must not adopt a parent from a different tracer"
        );
    }

    #[test]
    fn concurrent_collection_is_complete() {
        let t = Tracer::new();
        let root = t.span("root");
        let root_id = t.current_span_id();
        std::thread::scope(|s| {
            for worker in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let mut g = t.span_under(root_id, &format!("w{worker}"));
                        g.field("i", i.to_string());
                    }
                });
            }
        });
        drop(root);
        let spans = t.snapshot_spans();
        assert_eq!(spans.len(), 1 + 8 * 50);
        let root_rec = spans.iter().find(|s| s.name == "root").unwrap();
        let child_count = spans
            .iter()
            .filter(|s| s.parent == Some(root_rec.id))
            .count();
        assert_eq!(child_count, 400);
        // Ids are unique.
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), spans.len());
    }

    #[test]
    fn tree_rendering_indents_children() {
        let t = Tracer::new();
        {
            let _a = t.span("query");
            let _b = t.span("send");
        }
        let tree = render_tree(&t.snapshot_spans());
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("query ("));
        assert!(lines[1].starts_with("  send ("));
    }

    #[test]
    fn json_round_trip_shape() {
        let t = Tracer::new();
        {
            let mut g = t.span("s\"x\"");
            g.field("path", "a\\b");
        }
        let json = spans_to_json(&t.snapshot_spans());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"s\\\"x\\\"\""));
        assert!(json.contains("\"path\":\"a\\\\b\""));
        assert!(json.contains("\"parent\":null"));
    }

    #[test]
    fn drain_empties_the_timeline() {
        let t = Tracer::new();
        {
            let _g = t.span("once");
        }
        assert_eq!(t.drain().len(), 1);
        assert!(t.drain().is_empty());
    }
}
