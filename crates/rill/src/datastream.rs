//! The typed `DataStream` API and its execution environment.
//!
//! Programs are built fluently — `env.add_source(...).filter(...)
//! .add_sink(...)` — and executed with
//! [`StreamExecutionEnvironment::execute`]. Consecutive operators connected
//! by forward edges are **chained**: they compose into a single
//! [`Collector`] stack running in one thread per subtask, with no
//! serialization or boxing between them (paper §II-B describes the same
//! optimization in Apache Flink). Exchanges ([`DataStream::rebalance`],
//! [`DataStream::key_by`]) break chains and move elements across typed
//! bounded channels.

use crate::error::{Error, Result};
use crate::graph::{NodeId, NodeKind, Partitioning, StreamGraph};
use crate::operator::{
    Collector, CountingCollector, FilterCollector, FlatMapCollector, GroupCollector, MapCollector,
    MeteredCollector, ReduceCollector,
};
use crate::plan::ExecutionPlan;
use crate::runtime::{ClusterSpec, JobManager, JobResult, TaskSpec};
use crate::sink::{ParallelSink, SinkCollector};
use crate::source::ParallelSource;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Capacity of inter-task exchange channels; provides backpressure like
/// Flink's bounded network buffers.
const EXCHANGE_CAPACITY: usize = 4096;

type BuildFn<T> =
    Arc<dyn Fn(usize, Box<dyn Collector<T>>) -> Box<dyn FnOnce() + Send> + Send + Sync>;

#[derive(Debug)]
struct EnvCore {
    graph: StreamGraph,
    parallelism: usize,
    chaining: bool,
    cluster: ClusterSpec,
    tasks: Vec<TaskSpec>,
    sink_counters: Vec<(String, obs::Counter)>,
    watchdog: Option<std::time::Duration>,
}

/// Entry point for building and executing jobs — rill's counterpart of
/// Flink's `StreamExecutionEnvironment` plus the client role of Fig. 1.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use rill::{StreamExecutionEnvironment, VecSink, VecSource};
///
/// let env = StreamExecutionEnvironment::local();
/// let sink = VecSink::new();
/// env.add_source(VecSource::new(vec![1, 2, 3, 4]))
///     .filter(|x: &i64| x % 2 == 0)
///     .add_sink(sink.clone());
/// env.execute("evens")?;
/// assert_eq!(sink.snapshot(), vec![2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamExecutionEnvironment {
    core: Arc<Mutex<EnvCore>>,
}

impl StreamExecutionEnvironment {
    /// Creates an environment on a local single-task-manager cluster with
    /// default parallelism 1.
    pub fn local() -> Self {
        Self::with_cluster(ClusterSpec::local())
    }

    /// Creates an environment on an explicit cluster shape.
    pub fn with_cluster(cluster: ClusterSpec) -> Self {
        StreamExecutionEnvironment {
            core: Arc::new(Mutex::new(EnvCore {
                graph: StreamGraph::new(),
                parallelism: 1,
                chaining: true,
                cluster,
                tasks: Vec::new(),
                sink_counters: Vec::new(),
                watchdog: None,
            })),
        }
    }

    /// Arms a watchdog for subsequent [`execute`](Self::execute) calls:
    /// a job still running after `timeout` fails with
    /// [`Error::WatchdogExpired`] instead of hanging the caller.
    pub fn set_watchdog(&self, timeout: std::time::Duration) {
        self.core.lock().watchdog = Some(timeout);
    }

    /// Sets the default parallelism applied to subsequently created
    /// operators (Flink's `-p` submission flag, paper §III-A2).
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn set_parallelism(&self, parallelism: usize) {
        assert!(parallelism > 0, "parallelism must be at least 1");
        self.core.lock().parallelism = parallelism;
    }

    /// The current default parallelism.
    pub fn parallelism(&self) -> usize {
        self.core.lock().parallelism
    }

    /// Disables operator chaining: every operator boundary becomes a
    /// channel handoff between threads. Exists for the ablation benchmark
    /// quantifying what chaining is worth.
    pub fn disable_operator_chaining(&self) {
        self.core.lock().chaining = false;
    }

    /// Whether chaining is enabled.
    pub fn chaining_enabled(&self) -> bool {
        self.core.lock().chaining
    }

    /// Adds a source, returning the stream it produces.
    pub fn add_source<T, S>(&self, source: S) -> DataStream<T>
    where
        T: Send + 'static,
        S: ParallelSource<T>,
    {
        let mut core = self.core.lock();
        let parallelism = core.parallelism;
        let name = source.name();
        let node = core
            .graph
            .add_node(NodeKind::Source, name.clone(), parallelism);
        drop(core);
        let source = Arc::new(source);
        let build: BuildFn<T> = Arc::new(move |subtask, mut col| {
            let mut instance = source.create(subtask, parallelism);
            Box::new(move || {
                instance.run(&mut col);
                col.close();
            })
        });
        DataStream {
            env: self.clone(),
            node,
            parallelism,
            pending: Partitioning::Forward,
            chain: vec![name],
            build,
        }
    }

    /// Extracts the current execution plan (the Fig. 12/13 view).
    pub fn execution_plan(&self) -> ExecutionPlan {
        ExecutionPlan::from_graph(&self.core.lock().graph)
    }

    /// Executes all pending sinks as one job and waits for completion.
    ///
    /// # Errors
    ///
    /// [`Error::DanglingStream`] if a stream was never terminated;
    /// [`Error::NotEnoughSlots`] if the job's maximum parallelism exceeds
    /// the cluster's slots; [`Error::TaskPanicked`] if a subtask panics;
    /// [`Error::InvalidTopology`] when there is nothing to run.
    pub fn execute(&self, name: &str) -> Result<JobResult> {
        let (cluster, tasks, counters, watchdog) = {
            let mut core = self.core.lock();
            if let Some(node) = core.graph.dangling().into_iter().next() {
                let node_name = core
                    .graph
                    .node(node)
                    .map_or_else(|| node.to_string(), |n| n.name.clone());
                return Err(Error::DanglingStream { node: node_name });
            }
            (
                core.cluster,
                std::mem::take(&mut core.tasks),
                std::mem::take(&mut core.sink_counters),
                core.watchdog,
            )
        };
        JobManager::execute_with_watchdog(name, cluster, tasks, counters, watchdog)
    }

    fn with_core<R>(&self, f: impl FnOnce(&mut EnvCore) -> R) -> R {
        f(&mut self.core.lock())
    }
}

/// A typed stream of elements flowing through the job.
///
/// `DataStream` values are consumed by every transformation (move
/// semantics): each stream has exactly one downstream consumer, keeping
/// chains statically typed. See the crate root for the full API tour.
pub struct DataStream<T> {
    env: StreamExecutionEnvironment,
    node: NodeId,
    parallelism: usize,
    /// Partitioning of the edge that will connect `node` to the next node.
    pending: Partitioning,
    /// Names of the operators accumulated in the current (unfinalized)
    /// chain, for task naming.
    chain: Vec<String>,
    build: BuildFn<T>,
}

impl<T: Send + 'static> DataStream<T> {
    /// The graph node this stream currently ends at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The stream's current parallelism.
    pub fn stream_parallelism(&self) -> usize {
        self.parallelism
    }

    /// Renames the operator (or source) this stream currently ends at, as
    /// shown in execution plans.
    pub fn rename(self, name: impl Into<String>) -> Self {
        let name = name.into();
        let mut stream = self;
        stream
            .env
            .with_core(|core| core.graph.set_name(stream.node, name.clone()));
        if let Some(last) = stream.chain.last_mut() {
            *last = name;
        }
        stream
    }

    /// Applies a custom operator: `make` receives the downstream collector
    /// of each subtask and returns the operator's collector. This is the
    /// extension point used by the abstraction-layer runner to install its
    /// `ParDo` stages.
    pub fn transform<U, F>(self, name: &str, make: F) -> DataStream<U>
    where
        U: Send + 'static,
        F: Fn(Box<dyn Collector<U>>) -> Box<dyn Collector<T>> + Send + Sync + 'static,
    {
        let stream = self.maybe_unchain();
        let node = stream.env.with_core(|core| {
            let node = core
                .graph
                .add_node(NodeKind::Operator, name, stream.parallelism);
            core.graph.add_edge(stream.node, node, stream.pending);
            node
        });
        let parent = stream.build;
        let make = Arc::new(make);
        let metric_name = name.to_string();
        let build: BuildFn<U> = Arc::new(move |subtask, col| {
            if obs::enabled() {
                // Resolved at job materialization, not per element; the
                // disabled path builds the exact pre-instrumentation chain.
                let records_in = obs::counter(&format!("rill.op.{metric_name}.records_in"));
                let busy = obs::counter(&format!("rill.op.{metric_name}.busy_micros"));
                parent(
                    subtask,
                    Box::new(MeteredCollector::new(records_in, busy, make(col))),
                )
            } else {
                parent(subtask, make(col))
            }
        });
        let mut chain = stream.chain;
        chain.push(name.to_string());
        DataStream {
            env: stream.env,
            node,
            parallelism: stream.parallelism,
            pending: Partitioning::Forward,
            chain,
            build,
        }
    }

    /// Element-wise transformation.
    pub fn map<U, F>(self, f: F) -> DataStream<U>
    where
        U: Send + 'static,
        F: Fn(T) -> U + Clone + Send + Sync + 'static,
    {
        self.transform("Map", move |col| {
            Box::new(MapCollector::new(f.clone(), col))
        })
    }

    /// Keeps only elements satisfying the predicate.
    pub fn filter<F>(self, f: F) -> DataStream<T>
    where
        F: Fn(&T) -> bool + Clone + Send + Sync + 'static,
    {
        self.transform("Filter", move |col| {
            Box::new(FilterCollector::new(f.clone(), col))
        })
    }

    /// One-to-many transformation; `f` pushes outputs through the emitter.
    pub fn flat_map<U, F>(self, f: F) -> DataStream<U>
    where
        U: Send + 'static,
        F: Fn(T, &mut dyn FnMut(U)) + Clone + Send + Sync + 'static,
    {
        self.transform("Flat Map", move |col| {
            Box::new(FlatMapCollector::new(f.clone(), col))
        })
    }

    /// Redistributes elements round-robin over subtasks at the
    /// environment's current parallelism, breaking the chain.
    pub fn rebalance(self) -> DataStream<T> {
        let offset_router = |subtask: usize, fan_out: usize| {
            let mut next = subtask;
            move |_item: &T| {
                let target = next % fan_out;
                next = next.wrapping_add(1);
                target
            }
        };
        self.exchange(Partitioning::Rebalance, offset_router)
    }

    /// Partitions elements by key hash, breaking the chain. Subsequent
    /// keyed operations see all elements of a key on the same subtask.
    pub fn key_by<K, F>(self, key: F) -> KeyedStream<K, T>
    where
        K: Hash + Eq + Clone + Send + 'static,
        F: Fn(&T) -> K + Clone + Send + Sync + 'static,
    {
        let key_for_route = key.clone();
        let stream = self.exchange(Partitioning::Hash, move |_subtask, fan_out| {
            let key = key_for_route.clone();
            move |item: &T| {
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                key(item).hash(&mut hasher);
                (hasher.finish() % fan_out as u64) as usize
            }
        });
        KeyedStream {
            stream,
            key: Arc::new(key),
        }
    }

    /// Terminates the stream in a sink. Every pipeline branch must end in
    /// a sink before [`StreamExecutionEnvironment::execute`].
    pub fn add_sink<S>(self, sink: S)
    where
        S: ParallelSink<T>,
    {
        let stream = self.maybe_unchain();
        let name = sink.name();
        let (node, counter) = stream.env.with_core(|core| {
            let node = core
                .graph
                .add_node(NodeKind::Sink, name.clone(), stream.parallelism);
            core.graph.add_edge(stream.node, node, stream.pending);
            let counter = obs::Counter::new();
            let key = if core.sink_counters.iter().any(|(n, _)| *n == name) {
                format!("{name} ({node})")
            } else {
                name.clone()
            };
            core.sink_counters.push((key, counter.clone()));
            (node, counter)
        });
        let _ = node;
        let sink = Arc::new(sink);
        let parallelism = stream.parallelism;
        let mut runnables = Vec::with_capacity(parallelism);
        for subtask in 0..parallelism {
            let collector = Box::new(CountingCollector::new(
                counter.clone(),
                SinkCollector::new(sink.create(subtask, parallelism)),
            ));
            runnables.push((stream.build)(subtask, collector));
        }
        let mut chain = stream.chain;
        chain.push(name);
        stream.env.with_core(|core| {
            core.tasks.push(TaskSpec {
                name: chain.join(" -> "),
                parallelism,
                runnables,
            });
        });
    }

    /// Inserts a forward (subtask-preserving) exchange when chaining is
    /// disabled, so each operator runs as its own task.
    fn maybe_unchain(self) -> DataStream<T> {
        if self.env.chaining_enabled() || self.chain.is_empty() {
            return self;
        }
        // A fresh exchange already starts an unchained task; only break
        // when the current chain has an operator pending.
        self.exchange(Partitioning::Forward, |subtask, _fan_out| {
            move |_item: &T| subtask
        })
    }

    /// Finalizes the current chain into a task whose output crosses typed
    /// channels to `fan_out` downstream subtasks, routed per element by the
    /// router built from `(upstream subtask, fan_out)`.
    fn exchange<R, F>(self, partitioning: Partitioning, make_router: F) -> DataStream<T>
    where
        R: FnMut(&T) -> usize + Send + 'static,
        F: Fn(usize, usize) -> R,
    {
        let fan_out = match partitioning {
            Partitioning::Forward => self.parallelism,
            _ => self.env.parallelism(),
        };
        let mut senders = Vec::with_capacity(fan_out);
        let mut receivers = Vec::with_capacity(fan_out);
        for _ in 0..fan_out {
            let (tx, rx) = bounded::<T>(EXCHANGE_CAPACITY);
            senders.push(tx);
            receivers.push(rx);
        }
        let mut runnables = Vec::with_capacity(self.parallelism);
        for subtask in 0..self.parallelism {
            let collector = Box::new(ExchangeCollector {
                senders: senders.clone(),
                router: make_router(subtask, fan_out),
            });
            runnables.push((self.build)(subtask, collector));
        }
        drop(senders);
        self.env.with_core(|core| {
            core.tasks.push(TaskSpec {
                name: self.chain.join(" -> "),
                parallelism: self.parallelism,
                runnables,
            });
        });
        let build: BuildFn<T> = Arc::new(move |subtask, mut col| {
            let rx: Receiver<T> = receivers[subtask].clone();
            Box::new(move || {
                while let Ok(item) = rx.recv() {
                    col.collect(item);
                }
                col.close();
            })
        });
        DataStream {
            env: self.env,
            node: self.node,
            parallelism: fan_out,
            pending: partitioning,
            chain: Vec::new(),
            build,
        }
    }
}

/// Collector terminating a chain at an exchange: routes each element to a
/// downstream subtask's channel.
struct ExchangeCollector<T, R> {
    senders: Vec<Sender<T>>,
    router: R,
}

impl<T, R> Collector<T> for ExchangeCollector<T, R>
where
    T: Send,
    R: FnMut(&T) -> usize + Send,
{
    fn collect(&mut self, item: T) {
        let target = (self.router)(&item) % self.senders.len();
        // A closed receiver means the downstream task is gone (e.g. it
        // panicked); dropping the element keeps the job from deadlocking
        // and the failure surfaces through the downstream task's join.
        let _ = self.senders[target].send(item);
    }

    fn close(&mut self) {
        self.senders.clear();
    }
}

/// A stream partitioned by key, produced by [`DataStream::key_by`].
pub struct KeyedStream<K, T> {
    stream: DataStream<T>,
    key: Arc<dyn Fn(&T) -> K + Send + Sync>,
}

impl<K, T> KeyedStream<K, T>
where
    K: Hash + Eq + Clone + Send + 'static,
    T: Clone + Send + 'static,
{
    /// The key extractor this stream was partitioned by.
    pub(crate) fn key_fn(&self) -> Arc<dyn Fn(&T) -> K + Send + Sync> {
        self.key.clone()
    }

    /// Unwraps the underlying partitioned stream.
    pub(crate) fn into_stream(self) -> DataStream<T> {
        self.stream
    }

    /// Running reduction per key: each input emits the key's new
    /// accumulated value (Flink `KeyedStream::reduce` semantics).
    pub fn reduce<F>(self, f: F) -> DataStream<T>
    where
        F: Fn(T, T) -> T + Clone + Send + Sync + 'static,
    {
        let key = self.key.clone();
        self.stream.transform("Reduce", move |col| {
            let key = key.clone();
            Box::new(ReduceCollector::new(move |t: &T| key(t), f.clone(), col))
        })
    }

    /// Buffers all values per key and emits `(key, values)` when the
    /// bounded input ends — a global-window group-by, the substrate for
    /// the abstraction layer's `GroupByKey`.
    pub fn collect_groups(self) -> DataStream<(K, Vec<T>)> {
        let key = self.key.clone();
        self.stream.transform("Group", move |col| {
            let key = key.clone();
            Box::new(GroupCollector::new(move |t: &T| key(t), col))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::source::VecSource;

    #[test]
    fn linear_pipeline_runs() {
        let env = StreamExecutionEnvironment::local();
        let sink = VecSink::new();
        env.add_source(VecSource::new((0..100).collect::<Vec<i64>>()))
            .map(|x| x * 2)
            .filter(|x| *x % 4 == 0)
            .add_sink(sink.clone());
        let result = env.execute("job").unwrap();
        let expected: Vec<i64> = (0..100).map(|x| x * 2).filter(|x| x % 4 == 0).collect();
        assert_eq!(sink.snapshot(), expected);
        assert_eq!(result.total_sink_records(), expected.len() as u64);
    }

    #[test]
    fn flat_map_expands() {
        let env = StreamExecutionEnvironment::local();
        let sink = VecSink::new();
        env.add_source(VecSource::new(vec!["a b", "c d e"]))
            .flat_map(|line: &str, out| {
                for word in line.split(' ') {
                    out(word.to_string());
                }
            })
            .add_sink(sink.clone());
        env.execute("words").unwrap();
        assert_eq!(sink.snapshot(), vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn rebalance_spreads_work() {
        let env = StreamExecutionEnvironment::local();
        env.set_parallelism(2);
        let sink = VecSink::new();
        env.add_source(VecSource::new((0..1000).collect::<Vec<i64>>()))
            .rebalance()
            .map(|x| x + 1)
            .add_sink(sink.clone());
        let result = env.execute("job").unwrap();
        let mut got = sink.snapshot();
        got.sort_unstable();
        assert_eq!(got, (1..=1000).collect::<Vec<i64>>());
        assert_eq!(result.total_sink_records(), 1000);
    }

    #[test]
    fn key_by_groups_on_one_subtask() {
        let env = StreamExecutionEnvironment::local();
        env.set_parallelism(2);
        let sink = VecSink::new();
        env.add_source(VecSource::new(vec![
            ("a", 1i64),
            ("b", 10),
            ("a", 2),
            ("b", 20),
            ("a", 3),
        ]))
        .key_by(|t| t.0)
        .reduce(|x, y| (x.0, x.1 + y.1))
        .add_sink(sink.clone());
        env.execute("job").unwrap();
        let got = sink.snapshot();
        // Running totals per key, order within key preserved.
        let a: Vec<i64> = got.iter().filter(|t| t.0 == "a").map(|t| t.1).collect();
        let b: Vec<i64> = got.iter().filter(|t| t.0 == "b").map(|t| t.1).collect();
        assert_eq!(a, vec![1, 3, 6]);
        assert_eq!(b, vec![10, 30]);
    }

    #[test]
    fn collect_groups_emits_on_close() {
        let env = StreamExecutionEnvironment::local();
        let sink = VecSink::new();
        env.add_source(VecSource::new(vec![("a", 1), ("b", 2), ("a", 3)]))
            .key_by(|t: &(&str, i32)| t.0)
            .collect_groups()
            .add_sink(sink.clone());
        env.execute("job").unwrap();
        let mut got = sink.snapshot();
        got.sort_by_key(|g| g.0);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "a");
        assert_eq!(got[0].1, vec![("a", 1), ("a", 3)]);
    }

    #[test]
    fn dangling_stream_is_rejected() {
        let env = StreamExecutionEnvironment::local();
        let _ = env.add_source(VecSource::new(vec![1])).map(|x: i64| x);
        let err = env.execute("job").unwrap_err();
        assert_eq!(
            err,
            Error::DanglingStream {
                node: "Map".to_string()
            }
        );
    }

    #[test]
    fn empty_env_is_rejected() {
        let env = StreamExecutionEnvironment::local();
        assert!(matches!(env.execute("job"), Err(Error::InvalidTopology(_))));
    }

    #[test]
    fn parallelism_beyond_slots_fails() {
        let env = StreamExecutionEnvironment::with_cluster(ClusterSpec {
            task_managers: 1,
            slots_per_manager: 1,
        });
        env.set_parallelism(2);
        env.add_source(VecSource::new(vec![1, 2, 3]))
            .add_sink(VecSink::new());
        assert_eq!(
            env.execute("job").unwrap_err(),
            Error::NotEnoughSlots {
                required: 2,
                available: 1
            }
        );
    }

    #[test]
    fn chaining_disabled_still_correct() {
        let env = StreamExecutionEnvironment::local();
        env.disable_operator_chaining();
        let sink = VecSink::new();
        env.add_source(VecSource::new((0..50).collect::<Vec<i64>>()))
            .map(|x| x + 1)
            .filter(|x| x % 2 == 0)
            .map(|x| x * 10)
            .add_sink(sink.clone());
        env.execute("job").unwrap();
        let expected: Vec<i64> = (0..50)
            .map(|x| x + 1)
            .filter(|x| x % 2 == 0)
            .map(|x| x * 10)
            .collect();
        assert_eq!(sink.snapshot(), expected);
    }

    #[test]
    fn panic_in_operator_is_reported() {
        let env = StreamExecutionEnvironment::local();
        env.add_source(VecSource::new(vec![1, 2, 3]))
            .map(|x: i64| if x == 2 { panic!("bad element") } else { x })
            .add_sink(VecSink::new());
        let err = env.execute("job").unwrap_err();
        assert!(matches!(err, Error::TaskPanicked { .. }));
    }

    #[test]
    fn panic_downstream_of_exchange_does_not_deadlock() {
        let env = StreamExecutionEnvironment::local();
        env.set_parallelism(1);
        env.add_source(VecSource::new((0..100_000).collect::<Vec<i64>>()))
            .rebalance()
            .map(|x: i64| {
                if x == 10 {
                    panic!("downstream failure")
                } else {
                    x
                }
            })
            .add_sink(VecSink::new());
        let err = env.execute("job").unwrap_err();
        assert!(matches!(err, Error::TaskPanicked { .. }));
    }

    #[test]
    fn rename_changes_plan_name() {
        let env = StreamExecutionEnvironment::local();
        let sink = VecSink::new();
        env.add_source(VecSource::new(vec![1]))
            .map(|x: i64| x)
            .rename("ParDoTranslation.RawParDo")
            .add_sink(sink);
        let plan = env.execution_plan();
        assert!(plan
            .nodes()
            .iter()
            .any(|n| n.name == "ParDoTranslation.RawParDo"));
        env.execute("job").unwrap();
    }

    #[test]
    fn two_pipelines_one_job() {
        let env = StreamExecutionEnvironment::local();
        let a = VecSink::new();
        let b = VecSink::new();
        env.add_source(VecSource::new(vec![1, 2]))
            .add_sink(a.clone());
        env.add_source(VecSource::new(vec![3])).add_sink(b.clone());
        let result = env.execute("job").unwrap();
        assert_eq!(a.snapshot(), vec![1, 2]);
        assert_eq!(b.snapshot(), vec![3]);
        assert_eq!(result.total_sink_records(), 3);
        assert_eq!(
            result.sink_counts.len(),
            2,
            "duplicate sink names get distinct keys"
        );
    }
}
