//! Engine error types.

use std::fmt;

/// Convenience alias for engine results.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised when building or executing a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The job needs more task slots than the cluster provides.
    NotEnoughSlots {
        /// Slots required (the job's maximum operator parallelism, thanks
        /// to slot sharing).
        required: usize,
        /// Slots available across all task managers.
        available: usize,
    },
    /// A stream was built but never terminated in a sink.
    DanglingStream {
        /// Name of the unterminated node.
        node: String,
    },
    /// A task thread panicked during execution.
    TaskPanicked {
        /// Name of the failed task.
        task: String,
        /// Panic payload, if it was a string.
        message: String,
    },
    /// The topology is invalid for the requested execution.
    InvalidTopology(String),
    /// The job's watchdog deadline passed with subtasks still running.
    WatchdogExpired {
        /// Job name.
        job: String,
        /// Configured watchdog timeout in milliseconds.
        timeout_millis: u64,
        /// Subtask threads that had not finished at the deadline.
        unfinished: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotEnoughSlots {
                required,
                available,
            } => {
                write!(
                    f,
                    "job requires {required} task slots but only {available} are available"
                )
            }
            Error::DanglingStream { node } => {
                write!(f, "stream `{node}` is not terminated by a sink")
            }
            Error::TaskPanicked { task, message } => {
                write!(f, "task `{task}` panicked: {message}")
            }
            Error::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            Error::WatchdogExpired {
                job,
                timeout_millis,
                unfinished,
            } => write!(
                f,
                "job `{job}` exceeded its {timeout_millis}ms watchdog with {unfinished} subtasks still running"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            Error::NotEnoughSlots {
                required: 4,
                available: 2
            }
            .to_string(),
            "job requires 4 task slots but only 2 are available"
        );
        assert!(Error::DanglingStream { node: "Map".into() }
            .to_string()
            .contains("Map"));
        assert!(Error::TaskPanicked {
            task: "t".into(),
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(Error::InvalidTopology("empty".into())
            .to_string()
            .contains("empty"));
        assert!(Error::WatchdogExpired {
            job: "q1".into(),
            timeout_millis: 500,
            unfinished: 2
        }
        .to_string()
        .contains("watchdog"));
    }
}
