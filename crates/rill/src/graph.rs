//! The stream graph: the logical dataflow DAG built by the
//! [`DataStream`](crate::DataStream) API.
//!
//! The graph serves two purposes: validation (every branch must end in a
//! sink) and plan extraction ([`ExecutionPlan`](crate::ExecutionPlan),
//! which renders the Fig. 12/13-style views of the paper).

use std::fmt;

/// Identifier of a node in the stream graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Emits elements into the job.
    Source,
    /// Transforms elements.
    Operator,
    /// Consumes elements out of the job.
    Sink,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Source => f.write_str("Data Source"),
            NodeKind::Operator => f.write_str("Operator"),
            NodeKind::Sink => f.write_str("Data Sink"),
        }
    }
}

/// How elements travel along an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partitioning {
    /// Same-subtask handoff; eligible for chaining.
    Forward,
    /// Round-robin redistribution over downstream subtasks.
    Rebalance,
    /// Key-hash redistribution over downstream subtasks.
    Hash,
}

impl Partitioning {
    /// Whether an edge with this partitioning can be chained.
    pub fn chainable(self) -> bool {
        matches!(self, Partitioning::Forward)
    }
}

/// A node of the stream graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamNode {
    /// Node identifier.
    pub id: NodeId,
    /// Node kind.
    pub kind: NodeKind,
    /// Display name, e.g. `Filter` or `Source: Custom Source`.
    pub name: String,
    /// Parallelism the node runs with.
    pub parallelism: usize,
}

/// A directed edge of the stream graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEdge {
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Exchange strategy.
    pub partitioning: Partitioning,
}

/// The logical dataflow DAG.
#[derive(Debug, Clone, Default)]
pub struct StreamGraph {
    nodes: Vec<StreamNode>,
    edges: Vec<StreamEdge>,
}

impl StreamGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        name: impl Into<String>,
        parallelism: usize,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(StreamNode {
            id,
            kind,
            name: name.into(),
            parallelism,
        });
        id
    }

    /// Adds an edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist or the edge goes backwards
    /// (the builder API only creates forward edges, so a violation is a
    /// bug).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, partitioning: Partitioning) {
        assert!(
            from.0 < self.nodes.len() && to.0 < self.nodes.len(),
            "unknown node"
        );
        assert!(from.0 < to.0, "stream graph edges must go forward");
        self.edges.push(StreamEdge {
            from,
            to,
            partitioning,
        });
    }

    /// Renames a node.
    pub fn set_name(&mut self, id: NodeId, name: impl Into<String>) {
        if let Some(node) = self.nodes.get_mut(id.0) {
            node.name = name.into();
        }
    }

    /// All nodes in insertion (topological) order.
    pub fn nodes(&self) -> &[StreamNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[StreamEdge] {
        &self.edges
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&StreamNode> {
        self.nodes.get(id.0)
    }

    /// Outgoing edges of `id`.
    pub fn outputs(&self, id: NodeId) -> Vec<StreamEdge> {
        self.edges
            .iter()
            .filter(|e| e.from == id)
            .copied()
            .collect()
    }

    /// Incoming edges of `id`.
    pub fn inputs(&self, id: NodeId) -> Vec<StreamEdge> {
        self.edges.iter().filter(|e| e.to == id).copied().collect()
    }

    /// Nodes with no outgoing edges that are not sinks — a constructed but
    /// unterminated stream, which [`execute`](crate::StreamExecutionEnvironment::execute)
    /// rejects.
    pub fn dangling(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind != NodeKind::Sink && self.outputs(n.id).is_empty())
            .map(|n| n.id)
            .collect()
    }

    /// Groups nodes into chains: maximal runs connected by chainable
    /// (forward) edges between nodes of equal parallelism. This mirrors
    /// what the runtime actually fuses into single tasks.
    pub fn chains(&self) -> Vec<Vec<NodeId>> {
        let mut chains: Vec<Vec<NodeId>> = Vec::new();
        let mut chain_of: Vec<Option<usize>> = vec![None; self.nodes.len()];
        for node in &self.nodes {
            let inputs = self.inputs(node.id);
            let chained_parent = if inputs.len() == 1 {
                let e = inputs[0];
                let parent = &self.nodes[e.from.0];
                // A parent with multiple consumers cannot chain.
                let parent_fan_out = self.outputs(parent.id).len();
                (e.partitioning.chainable()
                    && parent.parallelism == node.parallelism
                    && parent_fan_out == 1)
                    .then_some(e.from)
            } else {
                None
            };
            match chained_parent.and_then(|p| chain_of[p.0]) {
                Some(chain) => {
                    chains[chain].push(node.id);
                    chain_of[node.id.0] = Some(chain);
                }
                None => {
                    chain_of[node.id.0] = Some(chains.len());
                    chains.push(vec![node.id]);
                }
            }
        }
        chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_graph() -> (StreamGraph, NodeId, NodeId, NodeId) {
        let mut g = StreamGraph::new();
        let s = g.add_node(NodeKind::Source, "Source: Custom Source", 1);
        let f = g.add_node(NodeKind::Operator, "Filter", 1);
        let k = g.add_node(NodeKind::Sink, "Sink: Unnamed", 1);
        g.add_edge(s, f, Partitioning::Forward);
        g.add_edge(f, k, Partitioning::Forward);
        (g, s, f, k)
    }

    #[test]
    fn linear_chain_is_single() {
        let (g, s, f, k) = linear_graph();
        assert_eq!(g.chains(), vec![vec![s, f, k]]);
        assert!(g.dangling().is_empty());
    }

    #[test]
    fn exchange_breaks_chain() {
        let mut g = StreamGraph::new();
        let s = g.add_node(NodeKind::Source, "src", 1);
        let m = g.add_node(NodeKind::Operator, "Map", 2);
        let k = g.add_node(NodeKind::Sink, "sink", 2);
        g.add_edge(s, m, Partitioning::Rebalance);
        g.add_edge(m, k, Partitioning::Forward);
        assert_eq!(g.chains(), vec![vec![s], vec![m, k]]);
    }

    #[test]
    fn parallelism_mismatch_breaks_chain() {
        let mut g = StreamGraph::new();
        let s = g.add_node(NodeKind::Source, "src", 1);
        let m = g.add_node(NodeKind::Operator, "Map", 2);
        g.add_edge(s, m, Partitioning::Forward);
        assert_eq!(g.chains().len(), 2);
    }

    #[test]
    fn fan_out_breaks_chain() {
        let mut g = StreamGraph::new();
        let s = g.add_node(NodeKind::Source, "src", 1);
        let a = g.add_node(NodeKind::Sink, "a", 1);
        let b = g.add_node(NodeKind::Sink, "b", 1);
        g.add_edge(s, a, Partitioning::Forward);
        g.add_edge(s, b, Partitioning::Forward);
        let chains = g.chains();
        assert_eq!(chains.len(), 3, "fan-out children start their own chains");
    }

    #[test]
    fn dangling_detection() {
        let mut g = StreamGraph::new();
        let s = g.add_node(NodeKind::Source, "src", 1);
        let m = g.add_node(NodeKind::Operator, "Map", 1);
        g.add_edge(s, m, Partitioning::Forward);
        assert_eq!(g.dangling(), vec![m]);
    }

    #[test]
    fn inputs_outputs() {
        let (g, s, f, k) = linear_graph();
        assert_eq!(g.outputs(s).len(), 1);
        assert_eq!(g.inputs(f).len(), 1);
        assert_eq!(g.inputs(k)[0].from, f);
        assert!(g.inputs(s).is_empty());
        assert!(g.outputs(k).is_empty());
        assert_eq!(g.node(f).unwrap().name, "Filter");
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_edge_panics() {
        let mut g = StreamGraph::new();
        let s = g.add_node(NodeKind::Source, "src", 1);
        let m = g.add_node(NodeKind::Operator, "Map", 1);
        g.add_edge(m, s, Partitioning::Forward);
    }

    #[test]
    fn rename() {
        let (mut g, s, _, _) = linear_graph();
        g.set_name(s, "Source: Broker");
        assert_eq!(g.node(s).unwrap().name, "Source: Broker");
    }
}
