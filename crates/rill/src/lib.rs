//! `rill` — a tuple-at-a-time data stream processing engine in the style
//! of Apache Flink.
//!
//! rill is one of the three system-under-test engines of the StreamBench
//! reproduction (paper §II-B). It reproduces the Flink properties the
//! benchmark exercises:
//!
//! * **Tuple-at-a-time processing** — elements flow through operators
//!   individually, not in micro-batches.
//! * **Operator chaining** — consecutive forward-connected operators of
//!   equal parallelism fuse into a single task: one thread, one inlined
//!   collector stack, no serialization between operators.
//! * **JobManager / TaskManager runtime** — jobs are scheduled into task
//!   slots; subtasks of one job share slots, so a job needs as many slots
//!   as its maximum operator parallelism (Fig. 1 of the paper).
//! * **Execution plans** — [`StreamExecutionEnvironment::execution_plan`]
//!   extracts the Fig. 12/13 view used to compare native and
//!   abstraction-layer programs.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use rill::{StreamExecutionEnvironment, VecSink, VecSource};
//!
//! let env = StreamExecutionEnvironment::local();
//! let sink = VecSink::new();
//! env.add_source(VecSource::new(vec!["error: disk", "ok", "error: net"]))
//!     .filter(|line: &&str| line.starts_with("error"))
//!     .map(|line| line.to_uppercase())
//!     .add_sink(sink.clone());
//! env.execute("grep-errors")?;
//! assert_eq!(sink.snapshot().len(), 2);
//! # Ok(())
//! # }
//! ```

mod datastream;
mod error;
mod graph;
pub mod operator;
mod plan;
mod runtime;
mod sink;
mod source;
mod window;

pub use datastream::{DataStream, KeyedStream, StreamExecutionEnvironment};
pub use error::{Error, Result};
pub use graph::{NodeId, NodeKind, Partitioning, StreamEdge, StreamGraph, StreamNode};
pub use operator::Collector;
pub use plan::{ExecutionPlan, PlanEdge, PlanNode};
pub use runtime::{ClusterSpec, JobManager, JobResult, SlotAssignment, TaskSpec};
pub use sink::{BrokerSink, ParallelSink, SinkCollector, SinkFunction, VecSink};
pub use source::{BrokerSource, ParallelSource, QueueSource, SourceFunction, VecSource};
