//! Push-based operators.
//!
//! A rill pipeline is a composition of [`Collector`]s: every operator wraps
//! its downstream collector, so an entire operator chain becomes a single
//! stack of inlined calls — rill's equivalent of Flink's operator chaining.
//! No element is boxed or serialized inside a chain; types stay concrete
//! from source to the next exchange or sink.
//!
//! Chains move data batch-at-a-time where they can: sources hand whole
//! fetch batches to [`Collector::collect_batch`], and the stateless
//! operators forward batches with one virtual call per *batch* instead of
//! one per element. Stateful operators fall back to the per-element
//! default, so correctness never depends on which path a chain takes.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A sink for elements of type `T`, called by the upstream operator.
///
/// `close` is called exactly once, after the last element; implementations
/// flush buffers and propagate the close downstream.
pub trait Collector<T>: Send {
    /// Accepts one element.
    fn collect(&mut self, item: T);

    /// Accepts a whole batch of elements, draining `items`.
    ///
    /// The contract: on return `items` is empty, its capacity intact, so
    /// callers can refill and resend the same buffer. The default forwards
    /// element by element; stateless operators override it to amortize the
    /// boxed-collector virtual call over the batch.
    fn collect_batch(&mut self, items: &mut Vec<T>) {
        for item in items.drain(..) {
            self.collect(item);
        }
    }

    /// Signals the end of the (bounded) stream.
    fn close(&mut self);
}

/// Blanket impl so `Box<dyn Collector<T>>` is itself a collector.
impl<T, C: Collector<T> + ?Sized> Collector<T> for Box<C> {
    fn collect(&mut self, item: T) {
        (**self).collect(item);
    }

    fn collect_batch(&mut self, items: &mut Vec<T>) {
        (**self).collect_batch(items);
    }

    fn close(&mut self) {
        (**self).close();
    }
}

/// One-to-one transformation.
pub struct MapCollector<F, C, U> {
    f: F,
    downstream: C,
    /// Reused output buffer for the batch path.
    scratch: Vec<U>,
}

impl<F, C, U> MapCollector<F, C, U> {
    /// Wraps `downstream` with the mapping `f`.
    pub fn new(f: F, downstream: C) -> Self {
        MapCollector {
            f,
            downstream,
            scratch: Vec::new(),
        }
    }
}

impl<T, U, F, C> Collector<T> for MapCollector<F, C, U>
where
    F: FnMut(T) -> U + Send,
    C: Collector<U>,
    U: Send,
{
    fn collect(&mut self, item: T) {
        self.downstream.collect((self.f)(item));
    }

    fn collect_batch(&mut self, items: &mut Vec<T>) {
        // `Drain` is `TrustedLen`, so this is one reservation plus an
        // unchecked-capacity fill — no per-element capacity test.
        self.scratch.extend(items.drain(..).map(&mut self.f));
        self.downstream.collect_batch(&mut self.scratch);
    }

    fn close(&mut self) {
        self.downstream.close();
    }
}

/// Predicate-based filtering.
pub struct FilterCollector<F, C> {
    predicate: F,
    downstream: C,
}

impl<F, C> FilterCollector<F, C> {
    /// Wraps `downstream` with the predicate.
    pub fn new(predicate: F, downstream: C) -> Self {
        FilterCollector {
            predicate,
            downstream,
        }
    }
}

impl<T, F, C> Collector<T> for FilterCollector<F, C>
where
    F: FnMut(&T) -> bool + Send,
    C: Collector<T>,
{
    fn collect(&mut self, item: T) {
        if (self.predicate)(&item) {
            self.downstream.collect(item);
        }
    }

    fn collect_batch(&mut self, items: &mut Vec<T>) {
        let predicate = &mut self.predicate;
        items.retain(|item| predicate(item));
        self.downstream.collect_batch(items);
    }

    fn close(&mut self) {
        self.downstream.close();
    }
}

/// One-to-many transformation: the function pushes any number of outputs
/// through the provided emit callback.
pub struct FlatMapCollector<F, C, U> {
    f: F,
    downstream: C,
    /// Reused output buffer for the batch path.
    scratch: Vec<U>,
}

impl<F, C, U> FlatMapCollector<F, C, U> {
    /// Wraps `downstream` with the flat-map function `f`.
    pub fn new(f: F, downstream: C) -> Self {
        FlatMapCollector {
            f,
            downstream,
            scratch: Vec::new(),
        }
    }
}

impl<T, U, F, C> Collector<T> for FlatMapCollector<F, C, U>
where
    F: FnMut(T, &mut dyn FnMut(U)) + Send,
    C: Collector<U>,
    U: Send,
{
    fn collect(&mut self, item: T) {
        let downstream = &mut self.downstream;
        (self.f)(item, &mut |out| downstream.collect(out));
    }

    fn collect_batch(&mut self, items: &mut Vec<T>) {
        let scratch = &mut self.scratch;
        for item in items.drain(..) {
            (self.f)(item, &mut |out| scratch.push(out));
        }
        self.downstream.collect_batch(&mut self.scratch);
    }

    fn close(&mut self) {
        self.downstream.close();
    }
}

/// Running keyed reduction: for each input, combines it with the key's
/// accumulated value and emits the new accumulated value (Flink's
/// `KeyedStream::reduce` semantics).
pub struct ReduceCollector<K, T, FK, FR, C> {
    key_fn: FK,
    reduce_fn: FR,
    state: HashMap<K, T>,
    downstream: C,
}

impl<K, T, FK, FR, C> ReduceCollector<K, T, FK, FR, C> {
    /// Creates a reducing collector.
    pub fn new(key_fn: FK, reduce_fn: FR, downstream: C) -> Self {
        ReduceCollector {
            key_fn,
            reduce_fn,
            state: HashMap::new(),
            downstream,
        }
    }
}

impl<K, T, FK, FR, C> Collector<T> for ReduceCollector<K, T, FK, FR, C>
where
    K: Eq + Hash + Send,
    T: Clone + Send,
    FK: FnMut(&T) -> K + Send,
    FR: FnMut(T, T) -> T + Send,
    C: Collector<T>,
{
    fn collect(&mut self, item: T) {
        let key = (self.key_fn)(&item);
        let merged = match self.state.remove(&key) {
            Some(acc) => (self.reduce_fn)(acc, item),
            None => item,
        };
        self.state.insert(key, merged.clone());
        self.downstream.collect(merged);
    }

    fn close(&mut self) {
        self.downstream.close();
    }
}

/// Bounded-stream grouping: buffers all values per key and emits
/// `(key, values)` pairs when the stream closes — a global-window
/// group-by for bounded inputs, used by the abstraction layer's
/// `GroupByKey` translation.
pub struct GroupCollector<K, T, FK, C> {
    key_fn: FK,
    groups: HashMap<K, Vec<T>>,
    /// Keys in first-seen order, for deterministic emission.
    order: Vec<K>,
    downstream: C,
}

impl<K, T, FK, C> GroupCollector<K, T, FK, C> {
    /// Creates a grouping collector.
    pub fn new(key_fn: FK, downstream: C) -> Self {
        GroupCollector {
            key_fn,
            groups: HashMap::new(),
            order: Vec::new(),
            downstream,
        }
    }
}

impl<K, T, FK, C> Collector<T> for GroupCollector<K, T, FK, C>
where
    K: Eq + Hash + Clone + Send,
    T: Send,
    FK: FnMut(&T) -> K + Send,
    C: Collector<(K, Vec<T>)>,
{
    fn collect(&mut self, item: T) {
        let key = (self.key_fn)(&item);
        let entry = self.groups.entry(key.clone()).or_default();
        if entry.is_empty() {
            self.order.push(key);
        }
        entry.push(item);
    }

    fn close(&mut self) {
        for key in self.order.drain(..) {
            if let Some(values) = self.groups.remove(&key) {
                self.downstream.collect((key, values));
            }
        }
        self.downstream.close();
    }
}

/// Pass-through collector that counts elements; used for task metrics.
pub struct CountingCollector<C> {
    counter: obs::Counter,
    downstream: C,
}

impl<C> CountingCollector<C> {
    /// Wraps `downstream`, incrementing `counter` per element.
    pub fn new(counter: obs::Counter, downstream: C) -> Self {
        CountingCollector {
            counter,
            downstream,
        }
    }
}

impl<T, C> Collector<T> for CountingCollector<C>
where
    C: Collector<T>,
{
    fn collect(&mut self, item: T) {
        self.counter.inc();
        self.downstream.collect(item);
    }

    fn collect_batch(&mut self, items: &mut Vec<T>) {
        self.counter.add(items.len() as u64);
        self.downstream.collect_batch(items);
    }

    fn close(&mut self) {
        self.downstream.close();
    }
}

/// Pass-through collector recording records-in and busy time for one
/// named operator; installed by
/// [`DataStream::transform`](crate::DataStream::transform) only while
/// instrumentation is enabled, so the disabled path never pays the
/// per-element clock reads.
///
/// Busy time is *inclusive*: operator chains are single call stacks, so
/// an operator's measured time contains its chained downstream (exactly
/// like a span tree — subtract the downstream operator to get exclusive
/// time).
pub struct MeteredCollector<C> {
    records_in: obs::Counter,
    busy_micros: obs::Counter,
    downstream: C,
}

impl<C> MeteredCollector<C> {
    /// Wraps `downstream` with the given instruments.
    pub fn new(records_in: obs::Counter, busy_micros: obs::Counter, downstream: C) -> Self {
        MeteredCollector {
            records_in,
            busy_micros,
            downstream,
        }
    }
}

impl<T, C> Collector<T> for MeteredCollector<C>
where
    C: Collector<T>,
{
    fn collect(&mut self, item: T) {
        self.records_in.inc();
        let started = std::time::Instant::now();
        self.downstream.collect(item);
        self.busy_micros.add(started.elapsed().as_micros() as u64);
    }

    fn collect_batch(&mut self, items: &mut Vec<T>) {
        // One counter add and one clock pair per batch: metering cost no
        // longer scales with element count on the batched plane.
        self.records_in.add(items.len() as u64);
        let started = std::time::Instant::now();
        self.downstream.collect_batch(items);
        self.busy_micros.add(started.elapsed().as_micros() as u64);
    }

    fn close(&mut self) {
        let started = std::time::Instant::now();
        self.downstream.close();
        self.busy_micros.add(started.elapsed().as_micros() as u64);
    }
}

/// Terminal collector that appends elements to a shared vector; the
/// workhorse of tests.
pub struct VecCollector<T> {
    items: Arc<parking_lot::Mutex<Vec<T>>>,
    closed: Arc<AtomicU64>,
}

impl<T> VecCollector<T> {
    /// Creates a collector appending into `items`; `closed` counts close
    /// calls.
    pub fn new(items: Arc<parking_lot::Mutex<Vec<T>>>, closed: Arc<AtomicU64>) -> Self {
        VecCollector { items, closed }
    }
}

impl<T: Send> Collector<T> for VecCollector<T> {
    fn collect(&mut self, item: T) {
        self.items.lock().push(item);
    }

    fn collect_batch(&mut self, items: &mut Vec<T>) {
        self.items.lock().append(items);
    }

    fn close(&mut self) {
        self.closed.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    fn harness<T>() -> (Arc<Mutex<Vec<T>>>, Arc<AtomicU64>, VecCollector<T>) {
        let items = Arc::new(Mutex::new(Vec::new()));
        let closed = Arc::new(AtomicU64::new(0));
        let collector = VecCollector::new(items.clone(), closed.clone());
        (items, closed, collector)
    }

    #[test]
    fn map_transforms_and_closes() {
        let (items, closed, sink) = harness::<i64>();
        let mut chain = MapCollector::new(|x: i64| x * 2, sink);
        for i in 0..5 {
            chain.collect(i);
        }
        chain.close();
        assert_eq!(*items.lock(), vec![0, 2, 4, 6, 8]);
        assert_eq!(closed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn filter_drops() {
        let (items, _, sink) = harness::<i64>();
        let mut chain = FilterCollector::new(|x: &i64| x % 2 == 0, sink);
        for i in 0..6 {
            chain.collect(i);
        }
        chain.close();
        assert_eq!(*items.lock(), vec![0, 2, 4]);
    }

    #[test]
    fn flat_map_expands_and_contracts() {
        let (items, _, sink) = harness::<i64>();
        let mut chain = FlatMapCollector::new(
            |x: i64, out: &mut dyn FnMut(i64)| {
                for _ in 0..x {
                    out(x);
                }
            },
            sink,
        );
        for i in 0..4 {
            chain.collect(i);
        }
        chain.close();
        assert_eq!(*items.lock(), vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn chained_operators_compose() {
        let (items, closed, sink) = harness::<String>();
        // Outermost collector runs first: +1, then filter, then format.
        let mut chain = MapCollector::new(
            |x: i64| x + 1,
            FilterCollector::new(
                |x: &i64| *x > 2,
                MapCollector::new(|x: i64| format!("n{x}"), sink),
            ),
        );
        for i in 0..5 {
            chain.collect(i);
        }
        chain.close();
        assert_eq!(
            *items.lock(),
            vec!["n3".to_string(), "n4".to_string(), "n5".to_string()]
        );
        assert_eq!(closed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reduce_emits_running_totals() {
        let (items, _, sink) = harness::<(char, i64)>();
        let mut chain = ReduceCollector::new(
            |t: &(char, i64)| t.0,
            |a: (char, i64), b: (char, i64)| (a.0, a.1 + b.1),
            sink,
        );
        chain.collect(('a', 1));
        chain.collect(('b', 10));
        chain.collect(('a', 2));
        chain.collect(('a', 3));
        chain.close();
        assert_eq!(*items.lock(), vec![('a', 1), ('b', 10), ('a', 3), ('a', 6)]);
    }

    #[test]
    fn group_buffers_until_close() {
        let (items, _, sink) = harness::<(char, Vec<i64>)>();
        let mut chain = GroupCollector::new(
            |t: &(char, i64)| t.0,
            MapCollector::new(
                |(k, vs): (char, Vec<(char, i64)>)| (k, vs.into_iter().map(|t| t.1).collect()),
                sink,
            ),
        );
        chain.collect(('b', 1));
        chain.collect(('a', 2));
        chain.collect(('b', 3));
        assert!(items.lock().is_empty(), "groups must not emit before close");
        chain.close();
        assert_eq!(*items.lock(), vec![('b', vec![1, 3]), ('a', vec![2])]);
    }

    #[test]
    fn counting_collector_counts() {
        let (items, _, sink) = harness::<i64>();
        let counter = obs::Counter::new();
        let mut chain = CountingCollector::new(counter.clone(), sink);
        for i in 0..7 {
            chain.collect(i);
        }
        chain.close();
        assert_eq!(counter.get(), 7);
        assert_eq!(items.lock().len(), 7);
    }

    #[test]
    fn batched_chain_matches_per_element() {
        let (batched, _, batched_sink) = harness::<String>();
        let (one_by_one, _, element_sink) = harness::<String>();
        let build = |sink: VecCollector<String>| {
            MapCollector::new(
                |x: i64| x + 1,
                FilterCollector::new(
                    |x: &i64| *x % 2 == 1,
                    FlatMapCollector::new(
                        |x: i64, out: &mut dyn FnMut(String)| {
                            out(format!("a{x}"));
                            out(format!("b{x}"));
                        },
                        sink,
                    ),
                ),
            )
        };
        let mut chain = build(batched_sink);
        let mut batch: Vec<i64> = (0..10).collect();
        chain.collect_batch(&mut batch);
        assert!(batch.is_empty(), "the batch must be drained");
        assert!(batch.capacity() >= 10, "capacity survives for reuse");
        chain.close();

        let mut chain = build(element_sink);
        for i in 0..10 {
            chain.collect(i);
        }
        chain.close();
        assert_eq!(*batched.lock(), *one_by_one.lock());
    }

    #[test]
    fn map_batch_reuses_scratch_across_batches() {
        let (items, _, sink) = harness::<i64>();
        let mut chain = MapCollector::new(|x: i64| x * 10, sink);
        for round in 0..3i64 {
            let mut batch = vec![round, round + 1];
            chain.collect_batch(&mut batch);
        }
        chain.close();
        assert_eq!(*items.lock(), vec![0, 10, 10, 20, 20, 30]);
    }

    #[test]
    fn metered_collector_batch_records_once_per_batch() {
        let (items, _, sink) = harness::<i64>();
        let records_in = obs::Counter::new();
        let busy = obs::Counter::new();
        let mut chain = MeteredCollector::new(records_in.clone(), busy.clone(), sink);
        let mut batch: Vec<i64> = (0..8).collect();
        chain.collect_batch(&mut batch);
        chain.close();
        assert_eq!(records_in.get(), 8, "records-in still counts elements");
        assert_eq!(items.lock().len(), 8);
    }

    #[test]
    fn counting_collector_batch_counts_elements() {
        let (items, _, sink) = harness::<i64>();
        let counter = obs::Counter::new();
        let mut chain = CountingCollector::new(counter.clone(), sink);
        let mut batch: Vec<i64> = (0..6).collect();
        chain.collect_batch(&mut batch);
        chain.close();
        assert_eq!(counter.get(), 6);
        assert_eq!(items.lock().len(), 6);
    }

    #[test]
    fn stateful_collectors_take_the_per_element_default() {
        let (items, _, sink) = harness::<(char, i64)>();
        let mut chain = ReduceCollector::new(
            |t: &(char, i64)| t.0,
            |a: (char, i64), b: (char, i64)| (a.0, a.1 + b.1),
            sink,
        );
        let mut batch = vec![('a', 1), ('b', 10), ('a', 2)];
        chain.collect_batch(&mut batch);
        chain.close();
        assert_eq!(*items.lock(), vec![('a', 1), ('b', 10), ('a', 3)]);
    }

    #[test]
    fn metered_collector_counts_and_times() {
        let (items, closed, sink) = harness::<i64>();
        let records_in = obs::Counter::new();
        let busy = obs::Counter::new();
        let mut chain = MeteredCollector::new(
            records_in.clone(),
            busy.clone(),
            MapCollector::new(
                |x: i64| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    x
                },
                sink,
            ),
        );
        for i in 0..5 {
            chain.collect(i);
        }
        chain.close();
        assert_eq!(records_in.get(), 5);
        assert!(busy.get() >= 5 * 200, "busy time includes downstream work");
        assert_eq!(items.lock().len(), 5);
        assert_eq!(closed.load(Ordering::SeqCst), 1);
    }
}
