//! Execution-plan extraction and rendering.
//!
//! The paper inspects Apache Flink's execution plans to explain the
//! abstraction layer's overhead: the native grep plan has three elements
//! (Fig. 12) while the Beam-built plan has seven (Fig. 13). This module
//! provides the same view for rill jobs.

use crate::graph::{NodeId, NodeKind, Partitioning, StreamGraph};
use std::fmt;

/// A node of the rendered plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// Graph node id.
    pub id: NodeId,
    /// Node kind.
    pub kind: NodeKind,
    /// Display name.
    pub name: String,
    /// Parallelism.
    pub parallelism: usize,
}

/// A connection between plan nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEdge {
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Exchange strategy.
    pub partitioning: Partitioning,
}

/// A point-in-time execution plan for a job graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionPlan {
    nodes: Vec<PlanNode>,
    edges: Vec<PlanEdge>,
    chains: Vec<Vec<NodeId>>,
}

impl ExecutionPlan {
    /// Extracts the plan from a stream graph.
    pub fn from_graph(graph: &StreamGraph) -> Self {
        let nodes = graph
            .nodes()
            .iter()
            .map(|n| PlanNode {
                id: n.id,
                kind: n.kind,
                name: n.name.clone(),
                parallelism: n.parallelism,
            })
            .collect();
        let edges = graph
            .edges()
            .iter()
            .map(|e| PlanEdge {
                from: e.from,
                to: e.to,
                partitioning: e.partitioning,
            })
            .collect();
        ExecutionPlan {
            nodes,
            edges,
            chains: graph.chains(),
        }
    }

    /// Plan nodes in topological order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Plan edges.
    pub fn edges(&self) -> &[PlanEdge] {
        &self.edges
    }

    /// Chain grouping: which nodes execute fused in one task.
    pub fn chains(&self) -> &[Vec<NodeId>] {
        &self.chains
    }

    /// Total number of plan elements — the quantity compared between
    /// Fig. 12 (three) and Fig. 13 (seven).
    pub fn element_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of `Operator` nodes.
    pub fn operator_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Operator)
            .count()
    }

    /// Nodes whose name contains `needle`.
    pub fn nodes_named_like(&self, needle: &str) -> Vec<&PlanNode> {
        self.nodes
            .iter()
            .filter(|n| n.name.contains(needle))
            .collect()
    }
}

impl fmt::Display for ExecutionPlan {
    /// Renders the plan in the boxed style of the paper's figures:
    ///
    /// ```text
    /// [Data Source] Source: Custom Source (parallelism: 1)
    ///   --FORWARD--> [Operator] Filter (parallelism: 1)
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for node in &self.nodes {
            writeln!(
                f,
                "[{}] {} (parallelism: {})",
                node.kind, node.name, node.parallelism
            )?;
            for edge in self.edges.iter().filter(|e| e.from == node.id) {
                let target = &self.nodes[edge.to.0];
                writeln!(
                    f,
                    "  --{}--> [{}] {}",
                    match edge.partitioning {
                        Partitioning::Forward => "FORWARD",
                        Partitioning::Rebalance => "REBALANCE",
                        Partitioning::Hash => "HASH",
                    },
                    target.kind,
                    target.name
                )?;
            }
        }
        writeln!(f, "chains: {:?}", self.chains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grep_like_graph() -> StreamGraph {
        let mut g = StreamGraph::new();
        let s = g.add_node(NodeKind::Source, "Source: Custom Source", 1);
        let f = g.add_node(NodeKind::Operator, "Filter", 1);
        let k = g.add_node(NodeKind::Sink, "Sink: Unnamed", 1);
        g.add_edge(s, f, Partitioning::Forward);
        g.add_edge(f, k, Partitioning::Forward);
        g
    }

    #[test]
    fn native_grep_plan_has_three_elements() {
        let plan = ExecutionPlan::from_graph(&grep_like_graph());
        assert_eq!(plan.element_count(), 3);
        assert_eq!(plan.operator_count(), 1);
        assert_eq!(plan.chains().len(), 1, "fully chained");
    }

    #[test]
    fn render_mentions_everything() {
        let plan = ExecutionPlan::from_graph(&grep_like_graph());
        let text = plan.to_string();
        assert!(text.contains("[Data Source] Source: Custom Source (parallelism: 1)"));
        assert!(text.contains("--FORWARD--> [Operator] Filter"));
        assert!(text.contains("[Data Sink] Sink: Unnamed"));
        assert!(text.contains("chains:"));
    }

    #[test]
    fn name_search() {
        let plan = ExecutionPlan::from_graph(&grep_like_graph());
        assert_eq!(plan.nodes_named_like("Filter").len(), 1);
        assert!(plan.nodes_named_like("RawParDo").is_empty());
    }

    #[test]
    fn edges_and_nodes_exposed() {
        let plan = ExecutionPlan::from_graph(&grep_like_graph());
        assert_eq!(plan.nodes().len(), 3);
        assert_eq!(plan.edges().len(), 2);
        assert_eq!(plan.edges()[0].partitioning, Partitioning::Forward);
    }
}
