//! The runtime: job manager, task managers, slots, and task execution.
//!
//! Mirrors the architecture of paper §II-B (Fig. 1): a client (the
//! [`StreamExecutionEnvironment`](crate::StreamExecutionEnvironment))
//! transforms a program into a dataflow graph and hands it to the
//! [`JobManager`], which schedules tasks into the slots of the configured
//! [task managers](ClusterSpec). Each parallel subtask runs in its own
//! thread; subtasks of the same job share slots (Flink's slot sharing), so
//! a job needs as many slots as its maximum operator parallelism.

use crate::error::{Error, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster shape: how many task managers, and how many slots each offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of task manager processes.
    pub task_managers: usize,
    /// Task slots per task manager.
    pub slots_per_manager: usize,
}

impl ClusterSpec {
    /// A single local task manager with one slot per host core, but at
    /// least four: slots are a logical resource (Flink performs no CPU
    /// separation between slots, paper §II-B), so small machines still run
    /// parallel jobs.
    pub fn local() -> Self {
        let slots = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        ClusterSpec {
            task_managers: 1,
            slots_per_manager: slots.max(4),
        }
    }

    /// A local cluster guaranteed to fit a job of the given maximum
    /// operator parallelism: [`ClusterSpec::local`], widened so
    /// `total_slots() >= parallelism`. Slots are logical (no CPU
    /// separation, paper §II-B), so over-provisioning slots on a small
    /// host is exactly what a real Flink standalone config would do.
    pub fn local_for(parallelism: usize) -> Self {
        let base = Self::local();
        ClusterSpec {
            task_managers: base.task_managers,
            slots_per_manager: base
                .slots_per_manager
                .max(parallelism.div_ceil(base.task_managers)),
        }
    }

    /// The paper's two-worker deployment.
    pub fn two_workers(slots_per_manager: usize) -> Self {
        ClusterSpec {
            task_managers: 2,
            slots_per_manager,
        }
    }

    /// Total slots.
    pub fn total_slots(&self) -> usize {
        self.task_managers * self.slots_per_manager
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::local()
    }
}

/// A schedulable task: one operator chain with its per-subtask runnables.
pub struct TaskSpec {
    /// Display name, e.g. `Source: Custom Source -> Filter`.
    pub name: String,
    /// Number of parallel subtasks.
    pub parallelism: usize,
    /// One runnable per subtask.
    pub runnables: Vec<Box<dyn FnOnce() + Send>>,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("name", &self.name)
            .field("parallelism", &self.parallelism)
            .finish_non_exhaustive()
    }
}

/// Placement of one subtask into a task manager slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotAssignment {
    /// Task name.
    pub task: String,
    /// Subtask index within the task.
    pub subtask: usize,
    /// Task manager index.
    pub task_manager: usize,
    /// Slot index within the task manager.
    pub slot: usize,
}

/// Outcome of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job name.
    pub name: String,
    /// Wall-clock execution time of the whole job.
    pub duration: Duration,
    /// Records delivered to each sink, by sink name.
    pub sink_counts: HashMap<String, u64>,
    /// Where each subtask ran.
    pub assignments: Vec<SlotAssignment>,
}

impl JobResult {
    /// Total records delivered to all sinks.
    pub fn total_sink_records(&self) -> u64 {
        self.sink_counts.values().sum()
    }
}

/// Completion latch for the watchdog: counts running subtasks and wakes
/// the waiter when the count reaches zero.
#[derive(Debug)]
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            remaining: Mutex::new(0),
            done: Condvar::new(),
        }
    }

    fn add_one(&self) {
        *self.remaining.lock() += 1;
    }

    /// Blocks until every registered subtask finished or `deadline`
    /// passes; returns how many were still running.
    fn wait_until(&self, deadline: Instant) -> usize {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            let now = Instant::now();
            let Some(budget) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return *remaining;
            };
            let (guard, _) = self.done.wait_timeout(remaining, budget);
            remaining = guard;
        }
        0
    }
}

/// Decrements its latch on drop — also on unwind, so panicking subtasks
/// still count as finished.
struct LatchGuard(Arc<Latch>);

impl Drop for LatchGuard {
    fn drop(&mut self) {
        let mut remaining = self.0.remaining.lock();
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.0.done.notify_all();
        }
    }
}

/// Schedules tasks into slots and runs them to completion.
#[derive(Debug, Default)]
pub struct JobManager;

impl JobManager {
    /// Executes `tasks` on a cluster of shape `cluster`.
    ///
    /// Thanks to slot sharing, the job occupies `max(parallelism)` slots;
    /// subtask `i` of every task lands in shared slot `i`, which maps to
    /// task manager `i / slots_per_manager`.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughSlots`] before anything runs;
    /// [`Error::TaskPanicked`] if any subtask thread panics (remaining
    /// tasks still run to completion first).
    pub fn execute(
        name: &str,
        cluster: ClusterSpec,
        tasks: Vec<TaskSpec>,
        sink_counters: Vec<(String, obs::Counter)>,
    ) -> Result<JobResult> {
        Self::execute_with_watchdog(name, cluster, tasks, sink_counters, None)
    }

    /// [`JobManager::execute`] with an optional watchdog: if the deadline
    /// passes with subtasks still running, the call returns
    /// [`Error::WatchdogExpired`] instead of blocking forever on a hung
    /// job (e.g. a tailing source whose producer died). The stuck
    /// subtask threads are detached, not killed — the caller owns the
    /// decision to abandon or retry the run.
    ///
    /// # Errors
    ///
    /// As [`JobManager::execute`], plus [`Error::WatchdogExpired`].
    pub fn execute_with_watchdog(
        name: &str,
        cluster: ClusterSpec,
        tasks: Vec<TaskSpec>,
        sink_counters: Vec<(String, obs::Counter)>,
        watchdog: Option<Duration>,
    ) -> Result<JobResult> {
        let mut job_span = obs::span("rill.execute");
        job_span.field("job", name);
        if tasks.is_empty() {
            return Err(Error::InvalidTopology("nothing to execute".to_string()));
        }
        let required = tasks.iter().map(|t| t.parallelism).max().unwrap_or(0);
        let available = cluster.total_slots();
        if required > available {
            return Err(Error::NotEnoughSlots {
                required,
                available,
            });
        }

        let mut assignments = Vec::new();
        for task in &tasks {
            for subtask in 0..task.parallelism {
                assignments.push(SlotAssignment {
                    task: task.name.clone(),
                    subtask,
                    task_manager: subtask / cluster.slots_per_manager,
                    slot: subtask % cluster.slots_per_manager,
                });
            }
        }

        let started = Instant::now();
        let latch = Arc::new(Latch::new());
        let mut handles = Vec::new();
        for task in tasks {
            let task_name = task.name;
            for (i, runnable) in task.runnables.into_iter().enumerate() {
                let label = format!("{task_name}#{i}");
                latch.add_one();
                let guard_latch = latch.clone();
                let handle = std::thread::Builder::new()
                    .name(label.clone())
                    .spawn(move || {
                        // Signals completion even when the runnable
                        // panics, so the watchdog never counts a crashed
                        // subtask as hung.
                        let _done = LatchGuard(guard_latch);
                        runnable();
                    })
                    .expect("spawn task thread");
                handles.push((label, handle));
            }
        }

        if let Some(timeout) = watchdog {
            let unfinished = latch.wait_until(started + timeout);
            if unfinished > 0 {
                // Leave the stuck threads detached; joining would block
                // exactly the way the watchdog exists to prevent.
                return Err(Error::WatchdogExpired {
                    job: name.to_string(),
                    timeout_millis: timeout.as_millis() as u64,
                    unfinished,
                });
            }
        }

        let mut failure: Option<Error> = None;
        for (label, handle) in handles {
            if let Err(payload) = handle.join() {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(std::string::ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                failure.get_or_insert(Error::TaskPanicked {
                    task: label,
                    message,
                });
            }
        }
        if let Some(err) = failure {
            return Err(err);
        }

        let duration = started.elapsed();
        let sink_counts = sink_counters
            .into_iter()
            .map(|(name, counter)| (name, counter.get()))
            .collect();
        Ok(JobResult {
            name: name.to_string(),
            duration,
            sink_counts,
            assignments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_task(name: &str, parallelism: usize) -> TaskSpec {
        TaskSpec {
            name: name.to_string(),
            parallelism,
            runnables: (0..parallelism)
                .map(|_| Box::new(|| ()) as Box<dyn FnOnce() + Send>)
                .collect(),
        }
    }

    #[test]
    fn cluster_spec_slots() {
        let c = ClusterSpec {
            task_managers: 2,
            slots_per_manager: 3,
        };
        assert_eq!(c.total_slots(), 6);
        assert!(ClusterSpec::local().total_slots() >= 1);
        assert_eq!(ClusterSpec::two_workers(4).total_slots(), 8);
    }

    #[test]
    fn executes_and_assigns_slots() {
        let cluster = ClusterSpec {
            task_managers: 2,
            slots_per_manager: 1,
        };
        let result = JobManager::execute(
            "j",
            cluster,
            vec![noop_task("a", 2), noop_task("b", 1)],
            vec![],
        )
        .unwrap();
        assert_eq!(result.name, "j");
        assert_eq!(result.assignments.len(), 3);
        // Subtask 1 of task `a` spills onto the second task manager.
        let a1 = result
            .assignments
            .iter()
            .find(|s| s.task == "a" && s.subtask == 1)
            .unwrap();
        assert_eq!(a1.task_manager, 1);
        assert_eq!(a1.slot, 0);
    }

    #[test]
    fn slot_sharing_requires_max_parallelism() {
        let cluster = ClusterSpec {
            task_managers: 1,
            slots_per_manager: 2,
        };
        // Three tasks of parallelism 2 share 2 slots.
        let tasks = vec![noop_task("a", 2), noop_task("b", 2), noop_task("c", 2)];
        assert!(JobManager::execute("j", cluster, tasks, vec![]).is_ok());
        // But parallelism 3 does not fit.
        let tasks = vec![noop_task("a", 3)];
        assert_eq!(
            JobManager::execute("j", cluster, tasks, vec![]).unwrap_err(),
            Error::NotEnoughSlots {
                required: 3,
                available: 2
            }
        );
    }

    #[test]
    fn empty_job_is_rejected() {
        assert!(matches!(
            JobManager::execute("j", ClusterSpec::local(), vec![], vec![]),
            Err(Error::InvalidTopology(_))
        ));
    }

    #[test]
    fn panics_are_reported() {
        let task = TaskSpec {
            name: "boom".to_string(),
            parallelism: 1,
            runnables: vec![Box::new(|| panic!("exploded"))],
        };
        let err = JobManager::execute("j", ClusterSpec::local(), vec![task], vec![]).unwrap_err();
        match err {
            Error::TaskPanicked { task, message } => {
                assert_eq!(task, "boom#0");
                assert_eq!(message, "exploded");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn watchdog_expires_on_hung_task() {
        let task = TaskSpec {
            name: "stuck".to_string(),
            parallelism: 1,
            runnables: vec![Box::new(|| {
                std::thread::sleep(Duration::from_millis(1_500));
            })],
        };
        let started = Instant::now();
        let err = JobManager::execute_with_watchdog(
            "j",
            ClusterSpec::local(),
            vec![task],
            vec![],
            Some(Duration::from_millis(50)),
        )
        .unwrap_err();
        assert!(started.elapsed() < Duration::from_millis(1_000));
        match err {
            Error::WatchdogExpired {
                job, unfinished, ..
            } => {
                assert_eq!(job, "j");
                assert_eq!(unfinished, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn watchdog_lets_finished_jobs_pass() {
        let result = JobManager::execute_with_watchdog(
            "j",
            ClusterSpec::local(),
            vec![noop_task("a", 2)],
            vec![],
            Some(Duration::from_secs(30)),
        );
        assert!(result.is_ok());
    }

    #[test]
    fn watchdog_sees_panicked_tasks_as_finished() {
        let task = TaskSpec {
            name: "boom".to_string(),
            parallelism: 1,
            runnables: vec![Box::new(|| panic!("exploded"))],
        };
        let err = JobManager::execute_with_watchdog(
            "j",
            ClusterSpec::local(),
            vec![task],
            vec![],
            Some(Duration::from_secs(30)),
        )
        .unwrap_err();
        assert!(
            matches!(err, Error::TaskPanicked { .. }),
            "a crash is a panic, not a hang: {err:?}"
        );
    }

    #[test]
    fn sink_counters_reported() {
        let counter = obs::Counter::new();
        let c2 = counter.clone();
        let task = TaskSpec {
            name: "t".to_string(),
            parallelism: 1,
            runnables: vec![Box::new(move || {
                c2.add(42);
            })],
        };
        let result = JobManager::execute(
            "j",
            ClusterSpec::local(),
            vec![task],
            vec![("sink".to_string(), counter)],
        )
        .unwrap();
        assert_eq!(result.sink_counts["sink"], 42);
        assert_eq!(result.total_sink_records(), 42);
    }
}
