//! Sinks: where elements leave a job.

use crate::operator::Collector;
use bytes::Bytes;
use logbus::{BusHandle, Record};
use parking_lot::Mutex;
use std::sync::Arc;

/// One parallel instance of a sink.
pub trait SinkFunction<T>: Send {
    /// Consumes one element.
    fn invoke(&mut self, item: T);

    /// Consumes a whole batch, draining `items` (leaving its capacity for
    /// reuse). The default forwards element by element; batching sinks
    /// override it to hand the batch on whole.
    fn invoke_batch(&mut self, items: &mut Vec<T>) {
        for item in items.drain(..) {
            self.invoke(item);
        }
    }

    /// Flushes buffered output; called once when the stream ends.
    fn close(&mut self) {}
}

/// A factory creating one [`SinkFunction`] per parallel subtask.
pub trait ParallelSink<T>: Send + Sync + 'static {
    /// Creates the instance for `subtask` of `parallelism`.
    fn create(&self, subtask: usize, parallelism: usize) -> Box<dyn SinkFunction<T>>;

    /// Display name used in execution plans.
    fn name(&self) -> String {
        "Sink: Unnamed".to_string()
    }
}

/// Adapter turning a [`SinkFunction`] into the terminal [`Collector`] of a
/// chain.
pub struct SinkCollector<T> {
    sink: Box<dyn SinkFunction<T>>,
}

impl<T> SinkCollector<T> {
    /// Wraps a sink instance.
    pub fn new(sink: Box<dyn SinkFunction<T>>) -> Self {
        SinkCollector { sink }
    }
}

impl<T: Send> Collector<T> for SinkCollector<T> {
    fn collect(&mut self, item: T) {
        self.sink.invoke(item);
    }

    fn collect_batch(&mut self, items: &mut Vec<T>) {
        self.sink.invoke_batch(items);
    }

    fn close(&mut self) {
        self.sink.close();
    }
}

/// Sink collecting into a shared vector, for tests and examples.
#[derive(Debug, Clone, Default)]
pub struct VecSink<T> {
    items: Arc<Mutex<Vec<T>>>,
}

impl<T> VecSink<T> {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        VecSink {
            items: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle to the collected elements.
    pub fn items(&self) -> Arc<Mutex<Vec<T>>> {
        self.items.clone()
    }

    /// Takes a snapshot of the collected elements.
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.items.lock().clone()
    }
}

struct VecSinkInstance<T> {
    items: Arc<Mutex<Vec<T>>>,
}

impl<T: Send + Sync + 'static> ParallelSink<T> for VecSink<T> {
    fn create(&self, _subtask: usize, _parallelism: usize) -> Box<dyn SinkFunction<T>> {
        Box::new(VecSinkInstance {
            items: self.items.clone(),
        })
    }
}

impl<T: Send> SinkFunction<T> for VecSinkInstance<T> {
    fn invoke(&mut self, item: T) {
        self.items.lock().push(item);
    }

    fn invoke_batch(&mut self, items: &mut Vec<T>) {
        self.items.lock().append(items);
    }
}

/// Sink producing to a `logbus` topic.
///
/// Writes go through an asynchronous, adaptively batching producer
/// ([`logbus::AsyncProducer`]): the operator never blocks on a broker
/// round trip, batches grow up to `batch_records` (default 500) while
/// requests are in flight, and `close` drains everything. Each batch is
/// one broker append with one `LogAppendTime` stamp.
#[derive(Debug, Clone)]
pub struct BrokerSink {
    bus: BusHandle,
    topic: String,
    partition: u32,
    batch_records: usize,
}

impl BrokerSink {
    /// Creates a sink appending to partition 0 of `topic`. Accepts a
    /// [`Broker`](logbus::Broker), a [`Cluster`](logbus::Cluster), or an
    /// existing [`BusHandle`]; on a cluster the background producer rides
    /// through broker failover.
    pub fn new(bus: impl Into<BusHandle>, topic: impl Into<String>) -> Self {
        BrokerSink {
            bus: bus.into(),
            topic: topic.into(),
            partition: 0,
            batch_records: 500,
        }
    }

    /// Selects the target partition.
    pub fn partition(mut self, partition: u32) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the maximum adaptive batch size; `1` forces an individual
    /// append per record.
    pub fn batch_records(mut self, records: usize) -> Self {
        self.batch_records = records.max(1);
        self
    }
}

struct BrokerSinkInstance {
    producer: logbus::AsyncProducer,
    /// Reused record buffer for the batch path.
    scratch: Vec<Record>,
}

impl ParallelSink<Bytes> for BrokerSink {
    fn create(&self, _subtask: usize, _parallelism: usize) -> Box<dyn SinkFunction<Bytes>> {
        Box::new(BrokerSinkInstance {
            producer: logbus::AsyncProducer::with_max_batch(
                self.bus.clone(),
                self.topic.clone(),
                self.partition,
                self.batch_records,
            ),
            scratch: Vec::new(),
        })
    }

    fn name(&self) -> String {
        format!("Sink: Broker topic `{}`", self.topic)
    }
}

impl SinkFunction<Bytes> for BrokerSinkInstance {
    fn invoke(&mut self, item: Bytes) {
        self.producer.send(Record::from_value(item));
    }

    fn invoke_batch(&mut self, items: &mut Vec<Bytes>) {
        // The whole batch crosses to the producer thread as one queue
        // message: no per-element channel operation or atomic update.
        self.scratch.extend(items.drain(..).map(Record::from_value));
        self.producer.send_batch(&mut self.scratch);
    }

    fn close(&mut self) {
        // Drain the async producer so everything is durable when the job
        // reports completion.
        self.producer.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbus::{Broker, TopicConfig};

    #[test]
    fn vec_sink_collects() {
        let sink = VecSink::new();
        let mut instance = ParallelSink::<i64>::create(&sink, 0, 1);
        instance.invoke(1);
        instance.invoke(2);
        instance.close();
        assert_eq!(sink.snapshot(), vec![1, 2]);
    }

    #[test]
    fn broker_sink_batches_and_close_drains() {
        let broker = Broker::new();
        broker.create_topic("out", TopicConfig::default()).unwrap();
        let sink = BrokerSink::new(broker.clone(), "out").batch_records(10);
        let mut instance = sink.create(0, 1);
        for i in 0..25 {
            instance.invoke(Bytes::from(format!("r{i}")));
        }
        // The producer is asynchronous; close() drains it.
        instance.close();
        assert_eq!(broker.latest_offset("out", 0).unwrap(), 25);
        // Three appends: two full batches of 10 plus the close flush.
        let records = broker.fetch("out", 0, 0, 25).unwrap();
        let stamps: std::collections::BTreeSet<i64> =
            records.iter().map(|r| r.timestamp.as_micros()).collect();
        assert_eq!(stamps.len(), 3, "one LogAppendTime per batch");
    }

    #[test]
    fn broker_sink_accepts_whole_batches() {
        let broker = Broker::new();
        broker.create_topic("out", TopicConfig::default()).unwrap();
        let sink = BrokerSink::new(broker.clone(), "out").batch_records(100);
        let mut instance = sink.create(0, 1);
        let mut batch: Vec<Bytes> = (0..25).map(|i| Bytes::from(format!("r{i}"))).collect();
        instance.invoke_batch(&mut batch);
        assert!(batch.is_empty(), "the batch must be drained");
        instance.close();
        let records = broker.fetch("out", 0, 0, 25).unwrap();
        assert_eq!(records.len(), 25);
        for (i, stored) in records.iter().enumerate() {
            assert_eq!(&stored.record.value[..], format!("r{i}").as_bytes());
        }
    }

    #[test]
    fn broker_sink_flushes_mid_stream() {
        let broker = Broker::new();
        broker.create_topic("out", TopicConfig::default()).unwrap();
        let sink = BrokerSink::new(broker.clone(), "out").batch_records(1);
        let mut instance = sink.create(0, 1);
        instance.invoke(Bytes::from_static(b"a"));
        // The batch is handed to the background producer immediately;
        // wait for it to land.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while broker.latest_offset("out", 0).unwrap() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "async flush never landed"
            );
            std::thread::yield_now();
        }
        instance.close();
        assert_eq!(broker.latest_offset("out", 0).unwrap(), 1);
    }

    #[test]
    fn broker_sink_drop_drains() {
        let broker = Broker::new();
        broker.create_topic("out", TopicConfig::default()).unwrap();
        {
            let sink = BrokerSink::new(broker.clone(), "out").batch_records(100);
            let mut instance = sink.create(0, 1);
            instance.invoke(Bytes::from_static(b"a"));
            instance.close();
        }
        assert_eq!(broker.latest_offset("out", 0).unwrap(), 1);
    }

    #[test]
    fn sink_collector_adapts() {
        let sink = VecSink::new();
        let mut col = SinkCollector::new(ParallelSink::<i64>::create(&sink, 0, 1));
        col.collect(7);
        col.close();
        assert_eq!(sink.snapshot(), vec![7]);
    }

    #[test]
    fn sink_names() {
        let broker = Broker::new();
        assert_eq!(
            ParallelSink::<Bytes>::name(&BrokerSink::new(broker, "out")),
            "Sink: Broker topic `out`"
        );
        assert_eq!(
            ParallelSink::<i64>::name(&VecSink::<i64>::new()),
            "Sink: Unnamed"
        );
    }
}
