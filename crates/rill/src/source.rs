//! Sources: where elements enter a job.

use crate::operator::Collector;
use bytes::Bytes;
use logbus::{AssignmentStrategy, Bus, BusHandle, Consumer, ConsumerConfig, StoredRecord};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A bounded group read that makes no progress for this long gives up —
/// the connector-path guard against a peer that died mid-handover.
const GROUP_STALL_LIMIT: std::time::Duration = std::time::Duration::from_secs(10);

/// Process-wide counters for auto-generated group and member names.
static NEXT_GROUP_ID: AtomicU64 = AtomicU64::new(0);

/// Bounded exponential backoff for idle polls, shared with every engine
/// connector through `logbus` (see [`logbus::Backoff`]): spin, then
/// yield, then capped sleeps, with `reset` re-arming the fast path after
/// progress.
pub use logbus::Backoff;

/// One parallel instance of a source, driving elements into the head of an
/// operator chain.
pub trait SourceFunction<T>: Send {
    /// Emits all elements of this instance's share of the input, then
    /// returns. rill jobs are bounded: `run` returning ends the subtask's
    /// stream.
    fn run(&mut self, out: &mut dyn Collector<T>);
}

/// A factory creating one [`SourceFunction`] per parallel subtask.
///
/// Instances must divide the input among themselves using
/// `(subtask, parallelism)` — e.g. [`BrokerSource`] assigns topic
/// partitions round-robin, so with more subtasks than partitions the extra
/// subtasks emit nothing (exactly Flink's Kafka source behaviour, and the
/// reason the paper sees little benefit from parallelism 2 on a
/// single-partition topic).
pub trait ParallelSource<T>: Send + Sync + 'static {
    /// Creates the instance for `subtask` of `parallelism`.
    fn create(&self, subtask: usize, parallelism: usize) -> Box<dyn SourceFunction<T>>;

    /// Display name used in execution plans.
    fn name(&self) -> String {
        "Source: Custom Source".to_string()
    }
}

/// In-memory source for tests and examples: subtask `i` emits the elements
/// at indices `i, i + p, i + 2p, …`.
#[derive(Debug, Clone)]
pub struct VecSource<T> {
    items: Arc<Vec<T>>,
}

impl<T> VecSource<T> {
    /// Creates a source over `items`.
    pub fn new(items: Vec<T>) -> Self {
        VecSource {
            items: Arc::new(items),
        }
    }
}

struct VecSourceInstance<T> {
    items: Arc<Vec<T>>,
    subtask: usize,
    parallelism: usize,
}

impl<T: Clone + Send + Sync + 'static> ParallelSource<T> for VecSource<T> {
    fn create(&self, subtask: usize, parallelism: usize) -> Box<dyn SourceFunction<T>> {
        Box::new(VecSourceInstance {
            items: self.items.clone(),
            subtask,
            parallelism,
        })
    }
}

impl<T: Clone + Send + Sync> SourceFunction<T> for VecSourceInstance<T> {
    fn run(&mut self, out: &mut dyn Collector<T>) {
        // Emitted in reused batches so the chain runs batch-at-a-time.
        const BATCH: usize = 1024;
        let mut batch = Vec::with_capacity(BATCH.min(self.items.len()));
        let mut i = self.subtask;
        while i < self.items.len() {
            batch.push(self.items[i].clone());
            if batch.len() == BATCH {
                out.collect_batch(&mut batch);
            }
            i += self.parallelism;
        }
        if !batch.is_empty() {
            out.collect_batch(&mut batch);
        }
    }
}

/// Bounded source reading a `logbus` topic.
///
/// By default the subtasks form a **consumer group**: each instance joins
/// the broker's group coordinator under a source-wide group name, and the
/// sticky rebalance protocol decides which partitions each subtask owns —
/// members joining or leaving mid-run hand partitions over with their
/// committed positions, so no record is lost or read twice. Reads stop at
/// the offsets that were current when the job started.
/// [`BrokerSource::static_assignment`] opts out, reverting to the fixed
/// `partition % parallelism == subtask` split.
#[derive(Debug, Clone)]
pub struct BrokerSource {
    bus: BusHandle,
    topic: String,
    fetch_size: usize,
    follow: Option<FollowMode>,
    group: Option<GroupSpec>,
}

/// Consumer-group configuration shared by all subtasks of one source.
#[derive(Debug, Clone)]
struct GroupSpec {
    name: String,
    strategy: AssignmentStrategy,
}

/// Tailing configuration: instead of stopping at the offsets current at
/// job start, the source polls until `target` records have been emitted
/// across all subtasks, backing off while caught up with the producer.
#[derive(Debug, Clone)]
struct FollowMode {
    target: u64,
    emitted: Arc<AtomicU64>,
}

impl BrokerSource {
    /// Creates a source reading all partitions of `topic`, with the
    /// subtasks coordinating through an auto-named consumer group.
    /// Accepts a [`Broker`](logbus::Broker), a
    /// [`Cluster`](logbus::Cluster), or an existing [`BusHandle`]; on a
    /// cluster the reads ride through broker failover.
    pub fn new(bus: impl Into<BusHandle>, topic: impl Into<String>) -> Self {
        let group = format!("rill-src-{}", NEXT_GROUP_ID.fetch_add(1, Ordering::Relaxed));
        BrokerSource {
            bus: bus.into(),
            topic: topic.into(),
            fetch_size: 2048,
            follow: None,
            group: Some(GroupSpec {
                name: group,
                strategy: AssignmentStrategy::Range,
            }),
        }
    }

    /// Sets the per-fetch batch size.
    pub fn fetch_size(mut self, records: usize) -> Self {
        self.fetch_size = records.max(1);
        self
    }

    /// Names the consumer group explicitly (e.g. to share committed
    /// offsets across job restarts) and picks the assignment strategy.
    pub fn consumer_group(mut self, name: impl Into<String>, strategy: AssignmentStrategy) -> Self {
        self.group = Some(GroupSpec {
            name: name.into(),
            strategy,
        });
        self
    }

    /// Disables group coordination: subtask `i` of `p` reads exactly the
    /// partitions with `partition % p == i`, with no rebalancing.
    pub fn static_assignment(mut self) -> Self {
        self.group = None;
        self
    }

    /// Keeps polling (with [`Backoff`]) until `records` records have been
    /// emitted across all subtasks — a bounded tail read over a topic
    /// that is still being produced to.
    pub fn follow_until(mut self, records: u64) -> Self {
        self.follow = Some(FollowMode {
            target: records,
            emitted: Arc::new(AtomicU64::new(0)),
        });
        self
    }
}

struct BrokerSourceInstance {
    bus: BusHandle,
    topic: String,
    fetch_size: usize,
    partitions: Vec<u32>,
    follow: Option<FollowMode>,
    group: Option<GroupSpec>,
}

impl ParallelSource<Bytes> for BrokerSource {
    fn create(&self, subtask: usize, parallelism: usize) -> Box<dyn SourceFunction<Bytes>> {
        // Static fallback split; group mode lets the coordinator assign
        // partitions instead.
        let total = self.bus.partition_count(&self.topic).unwrap_or(0);
        let partitions = (0..total)
            .filter(|p| (*p as usize) % parallelism == subtask)
            .collect();
        Box::new(BrokerSourceInstance {
            bus: self.bus.clone(),
            topic: self.topic.clone(),
            fetch_size: self.fetch_size,
            partitions,
            follow: self.follow.clone(),
            group: self.group.clone(),
        })
    }

    fn name(&self) -> String {
        format!("Source: Broker topic `{}`", self.topic)
    }
}

impl SourceFunction<Bytes> for BrokerSourceInstance {
    fn run(&mut self, out: &mut dyn Collector<Bytes>) {
        match (self.group.clone(), self.follow.clone()) {
            (Some(spec), None) => self.run_bounded_group(&spec, out),
            (Some(spec), Some(follow)) => self.run_following_group(&spec, &follow, out),
            (None, None) => self.run_bounded(out),
            (None, Some(follow)) => self.run_following(&follow, out),
        }
    }
}

impl BrokerSourceInstance {
    /// Builds the group-mode consumer for this instance and joins the
    /// source's consumer group.
    fn join_group(&self, spec: &GroupSpec) -> Option<Consumer> {
        let mut consumer = Consumer::with_config(
            self.bus.clone(),
            ConsumerConfig {
                group: Some(spec.name.clone()),
                max_poll_records: self.fetch_size.max(1),
                ..ConsumerConfig::default()
            },
        );
        consumer
            .subscribe_group(&[&self.topic], spec.strategy)
            .ok()?;
        Some(consumer)
    }

    /// Bounded group read: members drain the partitions the coordinator
    /// assigns them, committing positions as they go. A member is done
    /// when **every** partition of the topic is committed past the end
    /// offset captured at start — not merely its own share, because a
    /// rebalance may retarget partitions mid-run and the work only
    /// finishes when the group collectively drains the topic.
    fn run_bounded_group(&mut self, spec: &GroupSpec, out: &mut dyn Collector<Bytes>) {
        let retry = logbus::RetryPolicy::default();
        let Ok(total) = logbus::with_retry(&retry, || self.bus.partition_count(&self.topic)) else {
            return;
        };
        // End offsets current at start: the bounded read's finish line.
        let mut ends = Vec::with_capacity(total as usize);
        for p in 0..total {
            let Ok(end) = logbus::with_retry(&retry, || self.bus.latest_offset(&self.topic, p))
            else {
                return;
            };
            ends.push(end);
        }
        let Some(mut consumer) = self.join_group(spec) else {
            return;
        };
        let mut batch: Vec<StoredRecord> = Vec::with_capacity(self.fetch_size);
        let mut payloads: Vec<Bytes> = Vec::with_capacity(self.fetch_size);
        let mut backoff = Backoff::new();
        let mut last_progress = std::time::Instant::now();
        loop {
            let polled = consumer.poll_into(self.fetch_size, &mut batch).unwrap_or(0);
            if polled > 0 {
                payloads.extend(batch.drain(..).map(|stored| stored.record.value));
                out.collect_batch(&mut payloads);
                // Commit after emitting so a peer resuming from the
                // committed position never re-reads what went downstream.
                let _ = consumer.commit();
                backoff.reset();
                last_progress = std::time::Instant::now();
                continue;
            }
            let _ = consumer.commit();
            let drained = (0..total as usize).all(|p| {
                self.bus
                    .committed_offset(&spec.name, &self.topic, p as u32)
                    .unwrap_or(0)
                    >= ends[p]
            });
            if drained || last_progress.elapsed() > GROUP_STALL_LIMIT {
                break;
            }
            // Caught up but the group is not done (a peer still owns an
            // undrained partition, or our claim is pending) — back off.
            backoff.snooze();
        }
        let _ = consumer.leave_group();
    }

    /// Tailing group read: like [`BrokerSourceInstance::run_following`],
    /// with the coordinator deciding partition ownership. Positions hand
    /// over through commits on revoke, so the shared emitted count never
    /// double-counts a record across a rebalance.
    fn run_following_group(
        &mut self,
        spec: &GroupSpec,
        follow: &FollowMode,
        out: &mut dyn Collector<Bytes>,
    ) {
        let Some(mut consumer) = self.join_group(spec) else {
            return;
        };
        let mut batch: Vec<StoredRecord> = Vec::with_capacity(self.fetch_size);
        let mut payloads: Vec<Bytes> = Vec::with_capacity(self.fetch_size);
        let mut backoff = Backoff::new();
        while follow.emitted.load(Ordering::SeqCst) < follow.target {
            let polled = consumer.poll_into(self.fetch_size, &mut batch).unwrap_or(0);
            if polled > 0 {
                follow.emitted.fetch_add(polled as u64, Ordering::SeqCst);
                payloads.extend(batch.drain(..).map(|stored| stored.record.value));
                out.collect_batch(&mut payloads);
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
        let _ = consumer.leave_group();
    }

    /// Bounded read: stop at the per-partition offsets current at start.
    fn run_bounded(&mut self, out: &mut dyn Collector<Bytes>) {
        // One cached partition handle per assigned partition and one fetch
        // buffer reused across every fetch: the read loop resolves the
        // topic name once, not once per request. The payload buffer is
        // reused too — the already-fetched batch goes downstream whole.
        let mut batch = Vec::with_capacity(self.fetch_size);
        let mut payloads: Vec<Bytes> = Vec::with_capacity(self.fetch_size);
        let retry = logbus::RetryPolicy::default();
        for &partition in &self.partitions {
            // Resolution and the end-offset lookup retry through transient
            // broker faults; only a genuinely missing partition is skipped.
            let Ok(reader) =
                logbus::with_retry(&retry, || self.bus.partition_reader(&self.topic, partition))
            else {
                continue;
            };
            let Ok(end) = reader.latest_offset() else {
                continue;
            };
            let mut offset = reader.earliest_offset().unwrap_or(0);
            while offset < end {
                let max = self.fetch_size.min((end - offset) as usize);
                batch.clear();
                let Ok(appended) = reader.fetch_into(offset, max, &mut batch) else {
                    break;
                };
                if appended == 0 {
                    break;
                }
                // `appended > 0` was checked, but guard instead of panic
                // on the connector path.
                let Some(last) = batch.last() else {
                    break;
                };
                offset = last.offset + 1;
                payloads.extend(batch.drain(..).map(|stored| stored.record.value));
                out.collect_batch(&mut payloads);
            }
        }
    }

    /// Tailing read: poll every assigned partition until the shared
    /// emitted count reaches the follow target, backing off exponentially
    /// while caught up with the producer instead of spinning on empty
    /// fetches.
    fn run_following(&mut self, follow: &FollowMode, out: &mut dyn Collector<Bytes>) {
        let mut cursors = Vec::new();
        let retry = logbus::RetryPolicy::default();
        for &partition in &self.partitions {
            let Ok(reader) =
                logbus::with_retry(&retry, || self.bus.partition_reader(&self.topic, partition))
            else {
                continue;
            };
            let position = reader.earliest_offset().unwrap_or(0);
            cursors.push((reader, position));
        }
        if cursors.is_empty() {
            return;
        }
        let mut batch = Vec::with_capacity(self.fetch_size);
        let mut payloads: Vec<Bytes> = Vec::with_capacity(self.fetch_size);
        let mut backoff = Backoff::new();
        while follow.emitted.load(Ordering::SeqCst) < follow.target {
            let mut progressed = false;
            for (reader, position) in &mut cursors {
                batch.clear();
                let Ok(appended) = reader.fetch_into(*position, self.fetch_size, &mut batch) else {
                    continue;
                };
                if appended == 0 {
                    continue;
                }
                // Guard instead of panic on the connector path; an empty
                // batch after `appended > 0` cannot happen.
                let Some(last) = batch.last() else {
                    continue;
                };
                *position = last.offset + 1;
                follow.emitted.fetch_add(appended as u64, Ordering::SeqCst);
                payloads.extend(batch.drain(..).map(|stored| stored.record.value));
                out.collect_batch(&mut payloads);
                progressed = true;
            }
            if progressed {
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }
}

/// A source that drains a shared queue; lets tests feed a running job.
#[derive(Debug, Clone)]
pub struct QueueSource<T> {
    queue: Arc<Mutex<Vec<T>>>,
}

impl<T> QueueSource<T> {
    /// Creates a source over a shared queue. Only subtask 0 drains it.
    pub fn new(queue: Arc<Mutex<Vec<T>>>) -> Self {
        QueueSource { queue }
    }
}

struct QueueSourceInstance<T> {
    queue: Arc<Mutex<Vec<T>>>,
    active: bool,
}

impl<T: Send + Sync + 'static> ParallelSource<T> for QueueSource<T> {
    fn create(&self, subtask: usize, _parallelism: usize) -> Box<dyn SourceFunction<T>> {
        Box::new(QueueSourceInstance {
            queue: self.queue.clone(),
            active: subtask == 0,
        })
    }
}

impl<T: Send + Sync> SourceFunction<T> for QueueSourceInstance<T> {
    fn run(&mut self, out: &mut dyn Collector<T>) {
        if !self.active {
            return;
        }
        let mut drained: Vec<T> = std::mem::take(&mut *self.queue.lock());
        out.collect_batch(&mut drained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::VecCollector;
    use logbus::{Broker, Producer, Record, TopicConfig};
    use std::sync::atomic::AtomicU64;

    fn collect_all<T, S: ParallelSource<T>>(source: &S, parallelism: usize) -> Vec<Vec<T>>
    where
        T: Send + 'static,
    {
        (0..parallelism)
            .map(|i| {
                let items = Arc::new(Mutex::new(Vec::new()));
                let closed = Arc::new(AtomicU64::new(0));
                let mut col = VecCollector::new(items.clone(), closed);
                source.create(i, parallelism).run(&mut col);
                let items = items.lock().drain(..).collect::<Vec<T>>();
                items
            })
            .collect()
    }

    #[test]
    fn vec_source_splits_round_robin() {
        let source = VecSource::new(vec![0, 1, 2, 3, 4]);
        let parts = collect_all(&source, 2);
        assert_eq!(parts[0], vec![0, 2, 4]);
        assert_eq!(parts[1], vec![1, 3]);
    }

    #[test]
    fn broker_source_reads_bounded() {
        let broker = Broker::new();
        broker.create_topic("in", TopicConfig::default()).unwrap();
        let mut producer = Producer::new(broker.clone());
        for i in 0..100 {
            producer
                .send("in", Record::from_value(format!("r{i}")))
                .unwrap();
        }
        producer.flush().unwrap();

        let source = BrokerSource::new(broker.clone(), "in").fetch_size(7);
        let parts = collect_all(&source, 1);
        assert_eq!(parts[0].len(), 100);
        assert_eq!(&parts[0][99][..], b"r99");
    }

    #[test]
    fn broker_source_single_partition_leaves_subtask_idle() {
        let broker = Broker::new();
        broker.create_topic("in", TopicConfig::default()).unwrap();
        broker.produce("in", 0, Record::from_value("only")).unwrap();
        let source = BrokerSource::new(broker, "in");
        let parts = collect_all(&source, 2);
        assert_eq!(parts[0].len(), 1, "subtask 0 owns the single partition");
        assert!(parts[1].is_empty(), "subtask 1 has no partition to read");
    }

    #[test]
    fn broker_source_multi_partition_split() {
        let broker = Broker::new();
        broker
            .create_topic("in", TopicConfig::default().partitions(3))
            .unwrap();
        for p in 0..3 {
            for i in 0..10 {
                broker
                    .produce("in", p, Record::from_value(format!("p{p}-{i}")))
                    .unwrap();
            }
        }
        // Static assignment splits by `partition % parallelism`.
        let source = BrokerSource::new(broker.clone(), "in").static_assignment();
        let parts = collect_all(&source, 2);
        assert_eq!(parts[0].len(), 20, "partitions 0 and 2");
        assert_eq!(parts[1].len(), 10, "partition 1");

        // Group mode makes no per-subtask ownership promise under the
        // sequential harness (the first member may drain everything), but
        // the group as a whole reads each record exactly once.
        let grouped = BrokerSource::new(broker, "in");
        let parts = collect_all(&grouped, 2);
        let mut seen: Vec<Vec<u8>> = parts
            .iter()
            .flat_map(|p| p.iter().map(bytes::Bytes::to_vec))
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 30, "group reads every record exactly once");
    }

    #[test]
    fn concurrent_group_members_share_the_topic_exactly_once() {
        let broker = Broker::new();
        broker
            .create_topic("in", TopicConfig::default().partitions(4))
            .unwrap();
        for p in 0..4 {
            for i in 0..25 {
                broker
                    .produce("in", p, Record::from_value(format!("p{p}-{i}")))
                    .unwrap();
            }
        }
        let source = BrokerSource::new(broker, "in").fetch_size(7);
        let items = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..2)
            .map(|subtask| {
                let mut instance = source.create(subtask, 2);
                let items = items.clone();
                std::thread::spawn(move || {
                    let closed = Arc::new(AtomicU64::new(0));
                    let mut col = VecCollector::new(items, closed);
                    instance.run(&mut col);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let mut seen: Vec<Vec<u8>> = items.lock().iter().map(bytes::Bytes::to_vec).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 100, "two live members drain 100 unique records");
    }

    #[test]
    fn follow_source_gets_all_records_from_slow_producer() {
        let broker = Broker::new();
        broker.create_topic("in", TopicConfig::default()).unwrap();
        let producer_broker = broker.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..40 {
                producer_broker
                    .produce("in", 0, Record::from_value(format!("r{i}")))
                    .unwrap();
                if i % 8 == 0 {
                    // Leave the source caught up so it has to back off.
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
            }
        });
        let source = BrokerSource::new(broker, "in")
            .fetch_size(5)
            .follow_until(40);
        let items = Arc::new(Mutex::new(Vec::new()));
        let closed = Arc::new(AtomicU64::new(0));
        let mut col = VecCollector::new(items.clone(), closed);
        source.create(0, 1).run(&mut col);
        producer.join().unwrap();
        let collected = items.lock();
        assert_eq!(collected.len(), 40, "a slow producer loses no records");
        assert_eq!(&collected[39][..], b"r39", "order preserved");
    }

    #[test]
    fn queue_source_only_subtask_zero() {
        let queue = Arc::new(Mutex::new(vec![1, 2, 3]));
        let source = QueueSource::new(queue);
        let parts = collect_all(&source, 2);
        assert_eq!(parts[0].len() + parts[1].len(), 3);
        assert!(parts[1].is_empty());
    }

    #[test]
    fn source_names() {
        let broker = Broker::new();
        assert_eq!(
            ParallelSource::<Bytes>::name(&BrokerSource::new(broker, "x")),
            "Source: Broker topic `x`"
        );
        assert_eq!(
            ParallelSource::<i32>::name(&VecSource::new(vec![1])),
            "Source: Custom Source"
        );
    }
}
