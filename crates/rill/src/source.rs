//! Sources: where elements enter a job.

use crate::operator::Collector;
use bytes::Bytes;
use logbus::Broker;
use parking_lot::Mutex;
use std::sync::Arc;

/// One parallel instance of a source, driving elements into the head of an
/// operator chain.
pub trait SourceFunction<T>: Send {
    /// Emits all elements of this instance's share of the input, then
    /// returns. rill jobs are bounded: `run` returning ends the subtask's
    /// stream.
    fn run(&mut self, out: &mut dyn Collector<T>);
}

/// A factory creating one [`SourceFunction`] per parallel subtask.
///
/// Instances must divide the input among themselves using
/// `(subtask, parallelism)` — e.g. [`BrokerSource`] assigns topic
/// partitions round-robin, so with more subtasks than partitions the extra
/// subtasks emit nothing (exactly Flink's Kafka source behaviour, and the
/// reason the paper sees little benefit from parallelism 2 on a
/// single-partition topic).
pub trait ParallelSource<T>: Send + Sync + 'static {
    /// Creates the instance for `subtask` of `parallelism`.
    fn create(&self, subtask: usize, parallelism: usize) -> Box<dyn SourceFunction<T>>;

    /// Display name used in execution plans.
    fn name(&self) -> String {
        "Source: Custom Source".to_string()
    }
}

/// In-memory source for tests and examples: subtask `i` emits the elements
/// at indices `i, i + p, i + 2p, …`.
#[derive(Debug, Clone)]
pub struct VecSource<T> {
    items: Arc<Vec<T>>,
}

impl<T> VecSource<T> {
    /// Creates a source over `items`.
    pub fn new(items: Vec<T>) -> Self {
        VecSource {
            items: Arc::new(items),
        }
    }
}

struct VecSourceInstance<T> {
    items: Arc<Vec<T>>,
    subtask: usize,
    parallelism: usize,
}

impl<T: Clone + Send + Sync + 'static> ParallelSource<T> for VecSource<T> {
    fn create(&self, subtask: usize, parallelism: usize) -> Box<dyn SourceFunction<T>> {
        Box::new(VecSourceInstance {
            items: self.items.clone(),
            subtask,
            parallelism,
        })
    }
}

impl<T: Clone + Send + Sync> SourceFunction<T> for VecSourceInstance<T> {
    fn run(&mut self, out: &mut dyn Collector<T>) {
        let mut i = self.subtask;
        while i < self.items.len() {
            out.collect(self.items[i].clone());
            i += self.parallelism;
        }
    }
}

/// Bounded source reading a `logbus` topic: each subtask consumes the
/// partitions congruent to its index and stops at the offsets that were
/// current when the job started.
#[derive(Debug, Clone)]
pub struct BrokerSource {
    broker: Broker,
    topic: String,
    fetch_size: usize,
}

impl BrokerSource {
    /// Creates a source reading all partitions of `topic`.
    pub fn new(broker: Broker, topic: impl Into<String>) -> Self {
        BrokerSource {
            broker,
            topic: topic.into(),
            fetch_size: 2048,
        }
    }

    /// Sets the per-fetch batch size.
    pub fn fetch_size(mut self, records: usize) -> Self {
        self.fetch_size = records.max(1);
        self
    }
}

struct BrokerSourceInstance {
    broker: Broker,
    topic: String,
    fetch_size: usize,
    partitions: Vec<u32>,
}

impl ParallelSource<Bytes> for BrokerSource {
    fn create(&self, subtask: usize, parallelism: usize) -> Box<dyn SourceFunction<Bytes>> {
        let total = self
            .broker
            .topic(&self.topic)
            .map(|t| t.partition_count())
            .unwrap_or(0);
        let partitions = (0..total)
            .filter(|p| (*p as usize) % parallelism == subtask)
            .collect();
        Box::new(BrokerSourceInstance {
            broker: self.broker.clone(),
            topic: self.topic.clone(),
            fetch_size: self.fetch_size,
            partitions,
        })
    }

    fn name(&self) -> String {
        format!("Source: Broker topic `{}`", self.topic)
    }
}

impl SourceFunction<Bytes> for BrokerSourceInstance {
    fn run(&mut self, out: &mut dyn Collector<Bytes>) {
        // One cached partition handle per assigned partition and one fetch
        // buffer reused across every fetch: the read loop resolves the
        // topic name once, not once per request.
        let mut batch = Vec::with_capacity(self.fetch_size);
        for &partition in &self.partitions {
            let Ok(reader) = self.broker.partition_reader(&self.topic, partition) else {
                continue;
            };
            let Ok(end) = reader.latest_offset() else {
                continue;
            };
            let mut offset = reader.earliest_offset().unwrap_or(0);
            while offset < end {
                let max = self.fetch_size.min((end - offset) as usize);
                batch.clear();
                let Ok(appended) = reader.fetch_into(offset, max, &mut batch) else {
                    break;
                };
                if appended == 0 {
                    break;
                }
                offset = batch.last().expect("non-empty batch").offset + 1;
                for stored in batch.drain(..) {
                    out.collect(stored.record.value);
                }
            }
        }
    }
}

/// A source that drains a shared queue; lets tests feed a running job.
#[derive(Debug, Clone)]
pub struct QueueSource<T> {
    queue: Arc<Mutex<Vec<T>>>,
}

impl<T> QueueSource<T> {
    /// Creates a source over a shared queue. Only subtask 0 drains it.
    pub fn new(queue: Arc<Mutex<Vec<T>>>) -> Self {
        QueueSource { queue }
    }
}

struct QueueSourceInstance<T> {
    queue: Arc<Mutex<Vec<T>>>,
    active: bool,
}

impl<T: Send + Sync + 'static> ParallelSource<T> for QueueSource<T> {
    fn create(&self, subtask: usize, _parallelism: usize) -> Box<dyn SourceFunction<T>> {
        Box::new(QueueSourceInstance {
            queue: self.queue.clone(),
            active: subtask == 0,
        })
    }
}

impl<T: Send + Sync> SourceFunction<T> for QueueSourceInstance<T> {
    fn run(&mut self, out: &mut dyn Collector<T>) {
        if !self.active {
            return;
        }
        let drained: Vec<T> = std::mem::take(&mut *self.queue.lock());
        for item in drained {
            out.collect(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::VecCollector;
    use logbus::{Producer, Record, TopicConfig};
    use std::sync::atomic::AtomicU64;

    fn collect_all<T, S: ParallelSource<T>>(source: &S, parallelism: usize) -> Vec<Vec<T>>
    where
        T: Send + 'static,
    {
        (0..parallelism)
            .map(|i| {
                let items = Arc::new(Mutex::new(Vec::new()));
                let closed = Arc::new(AtomicU64::new(0));
                let mut col = VecCollector::new(items.clone(), closed);
                source.create(i, parallelism).run(&mut col);
                let items = items.lock().drain(..).collect::<Vec<T>>();
                items
            })
            .collect()
    }

    #[test]
    fn vec_source_splits_round_robin() {
        let source = VecSource::new(vec![0, 1, 2, 3, 4]);
        let parts = collect_all(&source, 2);
        assert_eq!(parts[0], vec![0, 2, 4]);
        assert_eq!(parts[1], vec![1, 3]);
    }

    #[test]
    fn broker_source_reads_bounded() {
        let broker = Broker::new();
        broker.create_topic("in", TopicConfig::default()).unwrap();
        let mut producer = Producer::new(broker.clone());
        for i in 0..100 {
            producer
                .send("in", Record::from_value(format!("r{i}")))
                .unwrap();
        }
        producer.flush().unwrap();

        let source = BrokerSource::new(broker.clone(), "in").fetch_size(7);
        let parts = collect_all(&source, 1);
        assert_eq!(parts[0].len(), 100);
        assert_eq!(&parts[0][99][..], b"r99");
    }

    #[test]
    fn broker_source_single_partition_leaves_subtask_idle() {
        let broker = Broker::new();
        broker.create_topic("in", TopicConfig::default()).unwrap();
        broker.produce("in", 0, Record::from_value("only")).unwrap();
        let source = BrokerSource::new(broker, "in");
        let parts = collect_all(&source, 2);
        assert_eq!(parts[0].len(), 1, "subtask 0 owns the single partition");
        assert!(parts[1].is_empty(), "subtask 1 has no partition to read");
    }

    #[test]
    fn broker_source_multi_partition_split() {
        let broker = Broker::new();
        broker
            .create_topic("in", TopicConfig::default().partitions(3))
            .unwrap();
        for p in 0..3 {
            for i in 0..10 {
                broker
                    .produce("in", p, Record::from_value(format!("p{p}-{i}")))
                    .unwrap();
            }
        }
        let source = BrokerSource::new(broker, "in");
        let parts = collect_all(&source, 2);
        assert_eq!(parts[0].len(), 20, "partitions 0 and 2");
        assert_eq!(parts[1].len(), 10, "partition 1");
    }

    #[test]
    fn queue_source_only_subtask_zero() {
        let queue = Arc::new(Mutex::new(vec![1, 2, 3]));
        let source = QueueSource::new(queue);
        let parts = collect_all(&source, 2);
        assert_eq!(parts[0].len() + parts[1].len(), 3);
        assert!(parts[1].is_empty());
    }

    #[test]
    fn source_names() {
        let broker = Broker::new();
        assert_eq!(
            ParallelSource::<Bytes>::name(&BrokerSource::new(broker, "x")),
            "Source: Broker topic `x`"
        );
        assert_eq!(
            ParallelSource::<i32>::name(&VecSource::new(vec![1])),
            "Source: Custom Source"
        );
    }
}
