//! Count windows: tumbling windows of a fixed number of elements.
//!
//! The paper lists "query complexity … as well as windowing" among the
//! measurement extensions (§V); these operators give the native rill API
//! the windowed aggregations such extended benchmarks need.

use crate::datastream::{DataStream, KeyedStream};
use crate::operator::Collector;
use std::collections::HashMap;
use std::hash::Hash;

/// Collector buffering fixed-size windows over the whole stream.
struct CountWindowAllCollector<T, C> {
    size: usize,
    buffer: Vec<T>,
    downstream: C,
}

impl<T: Send, C: Collector<Vec<T>>> Collector<T> for CountWindowAllCollector<T, C> {
    fn collect(&mut self, item: T) {
        self.buffer.push(item);
        if self.buffer.len() >= self.size {
            let window = std::mem::take(&mut self.buffer);
            self.downstream.collect(window);
        }
    }

    fn close(&mut self) {
        if !self.buffer.is_empty() {
            let window = std::mem::take(&mut self.buffer);
            self.downstream.collect(window);
        }
        self.downstream.close();
    }
}

/// Collector reducing per-key tumbling count windows.
struct CountWindowReduceCollector<K, T, FK, FR, C> {
    size: usize,
    key_fn: FK,
    reduce_fn: FR,
    state: HashMap<K, (usize, T)>,
    downstream: C,
}

impl<K, T, FK, FR, C> Collector<T> for CountWindowReduceCollector<K, T, FK, FR, C>
where
    K: Eq + Hash + Send,
    T: Send,
    FK: FnMut(&T) -> K + Send,
    FR: FnMut(T, T) -> T + Send,
    C: Collector<T>,
{
    fn collect(&mut self, item: T) {
        let key = (self.key_fn)(&item);
        let entry = match self.state.remove(&key) {
            Some((count, acc)) => (count + 1, (self.reduce_fn)(acc, item)),
            None => (1, item),
        };
        if entry.0 >= self.size {
            self.downstream.collect(entry.1);
        } else {
            self.state.insert(key, entry);
        }
    }

    fn close(&mut self) {
        // Emit partial windows on bounded-stream end, like a final
        // watermark firing.
        for (_key, (_count, acc)) in self.state.drain() {
            self.downstream.collect(acc);
        }
        self.downstream.close();
    }
}

impl<T: Send + 'static> DataStream<T> {
    /// Groups the (non-keyed) stream into tumbling windows of `size`
    /// elements; the final window may be partial.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn count_window_all(self, size: usize) -> DataStream<Vec<T>> {
        assert!(size > 0, "window size must be positive");
        self.transform("CountWindowAll", move |col| {
            Box::new(CountWindowAllCollector {
                size,
                buffer: Vec::new(),
                downstream: col,
            })
        })
    }
}

impl<K, T> KeyedStream<K, T>
where
    K: Hash + Eq + Clone + Send + 'static,
    T: Clone + Send + 'static,
{
    /// Reduces tumbling count windows of `size` elements per key: every
    /// `size` elements of a key emit one reduced value; partial windows
    /// flush when the bounded stream ends.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn count_window_reduce<F>(self, size: usize, f: F) -> DataStream<T>
    where
        F: Fn(T, T) -> T + Clone + Send + Sync + 'static,
    {
        assert!(size > 0, "window size must be positive");
        let key = self.key_fn();
        self.into_stream()
            .transform("CountWindowReduce", move |col| {
                let key = key.clone();
                Box::new(CountWindowReduceCollector {
                    size,
                    key_fn: move |t: &T| key(t),
                    reduce_fn: f.clone(),
                    state: HashMap::new(),
                    downstream: col,
                })
            })
    }
}

#[cfg(test)]
mod tests {

    use crate::sink::VecSink;
    use crate::source::VecSource;
    use crate::StreamExecutionEnvironment;

    #[test]
    fn count_window_all_chunks() {
        let env = StreamExecutionEnvironment::local();
        let sink = VecSink::new();
        env.add_source(VecSource::new((0..7).collect::<Vec<i64>>()))
            .count_window_all(3)
            .add_sink(sink.clone());
        env.execute("windows").unwrap();
        assert_eq!(sink.snapshot(), vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn count_window_reduce_per_key() {
        let env = StreamExecutionEnvironment::local();
        let sink = VecSink::new();
        env.add_source(VecSource::new(vec![
            ("a", 1i64),
            ("a", 2),
            ("b", 10),
            ("a", 3),
            ("a", 4),
            ("b", 20),
        ]))
        .key_by(|t: &(&str, i64)| t.0)
        .count_window_reduce(2, |x, y| (x.0, x.1 + y.1))
        .add_sink(sink.clone());
        env.execute("windows").unwrap();
        let mut got = sink.snapshot();
        got.sort();
        // a: windows [1,2] -> 3 and [3,4] -> 7; b: [10,20] -> 30.
        assert_eq!(got, vec![("a", 3), ("a", 7), ("b", 30)]);
    }

    #[test]
    fn partial_windows_flush_on_close() {
        let env = StreamExecutionEnvironment::local();
        let sink = VecSink::new();
        env.add_source(VecSource::new(vec![("k", 1i64)]))
            .key_by(|t: &(&str, i64)| t.0)
            .count_window_reduce(10, |x, y| (x.0, x.1 + y.1))
            .add_sink(sink.clone());
        env.execute("windows").unwrap();
        assert_eq!(sink.snapshot(), vec![("k", 1)]);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_panics() {
        let env = StreamExecutionEnvironment::local();
        let _ = env
            .add_source(VecSource::new(vec![1i64]))
            .count_window_all(0);
    }
}
