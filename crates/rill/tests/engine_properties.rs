//! Property-based tests of the rill engine: transformation semantics,
//! chaining transparency, and exchange correctness.

use proptest::prelude::*;
use rill::{StreamExecutionEnvironment, VecSink, VecSource};

fn run_pipeline(items: Vec<i64>, parallelism: usize, chaining: bool, rebalance: bool) -> Vec<i64> {
    let env = StreamExecutionEnvironment::local();
    env.set_parallelism(parallelism);
    if !chaining {
        env.disable_operator_chaining();
    }
    let sink = VecSink::new();
    let stream = env.add_source(VecSource::new(items));
    let stream = if rebalance {
        stream.rebalance()
    } else {
        stream
    };
    stream
        .map(|x| x.wrapping_mul(3))
        .filter(|x| x % 2 == 0)
        .flat_map(|x, out| {
            out(x);
            out(x + 1);
        })
        .add_sink(sink.clone());
    env.execute("prop").unwrap();
    sink.snapshot()
}

fn reference(items: &[i64]) -> Vec<i64> {
    items
        .iter()
        .map(|x| x.wrapping_mul(3))
        .filter(|x| x % 2 == 0)
        .flat_map(|x| [x, x + 1])
        .collect()
}

proptest! {
    /// A chained single-parallelism pipeline equals the sequential
    /// reference, element for element and in order.
    #[test]
    fn chained_pipeline_matches_reference(items in prop::collection::vec(any::<i64>(), 0..300)) {
        let expected = reference(&items);
        prop_assert_eq!(run_pipeline(items, 1, true, false), expected);
    }

    /// Disabling chaining (forward exchanges between all operators) never
    /// changes results or order.
    #[test]
    fn chaining_is_transparent(items in prop::collection::vec(any::<i64>(), 0..300)) {
        let expected = reference(&items);
        prop_assert_eq!(run_pipeline(items, 1, false, false), expected);
    }

    /// Rebalancing to any parallelism preserves the multiset of results.
    #[test]
    fn rebalance_preserves_multiset(
        items in prop::collection::vec(any::<i64>(), 0..300),
        parallelism in 1usize..4,
    ) {
        let mut expected = reference(&items);
        let mut got = run_pipeline(items, parallelism, true, true);
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// key_by + reduce computes per-key running aggregates whose final
    /// values equal a sequential group-sum, for any parallelism.
    #[test]
    fn keyed_reduce_final_values(
        items in prop::collection::vec((0u8..8, -1000i64..1000), 0..300),
        parallelism in 1usize..4,
    ) {
        let env = StreamExecutionEnvironment::local();
        env.set_parallelism(parallelism);
        let sink = VecSink::new();
        env.add_source(VecSource::new(items.clone()))
            .key_by(|t: &(u8, i64)| t.0)
            .reduce(|a, b| (a.0, a.1 + b.1))
            .add_sink(sink.clone());
        env.execute("prop").unwrap();

        // Last emitted value per key is the key's total.
        let mut finals = std::collections::HashMap::new();
        for (k, v) in sink.snapshot() {
            finals.insert(k, v);
        }
        let mut expected = std::collections::HashMap::new();
        for (k, v) in &items {
            *expected.entry(*k).or_insert(0i64) += v;
        }
        prop_assert_eq!(finals, expected);
    }

    /// collect_groups partitions the input exactly: every element appears
    /// in precisely its key's group.
    #[test]
    fn collect_groups_partitions_input(
        items in prop::collection::vec((0u8..6, any::<i64>()), 0..200),
        parallelism in 1usize..3,
    ) {
        let env = StreamExecutionEnvironment::local();
        env.set_parallelism(parallelism);
        let sink = VecSink::new();
        env.add_source(VecSource::new(items.clone()))
            .key_by(|t: &(u8, i64)| t.0)
            .collect_groups()
            .add_sink(sink.clone());
        env.execute("prop").unwrap();

        let groups = sink.snapshot();
        let total: usize = groups.iter().map(|(_, vs)| vs.len()).sum();
        prop_assert_eq!(total, items.len());
        for (key, values) in groups {
            for value in values {
                prop_assert_eq!(value.0, key, "element in wrong group");
            }
        }
    }
}
