// Fixture: a `collect_batch` that reads its input but never drains it,
// breaking the drained-`Vec` contract (DESIGN.md §9). Linted as if at
// `crates/rill/src/operator.rs`; must trip exactly `batch-contract`,
// once.
struct Probe {
    seen: usize,
}

impl Probe {
    fn collect_batch(&mut self, items: &mut Vec<u64>) {
        for item in items.iter() {
            self.seen += *item as usize;
        }
    }
}
