// Fixture: a fault-injection hook reaching outside the logbus fault
// home, where engines could start depending on injected behavior.
// Linted as if at `crates/rill/src/runtime.rs`; must trip exactly
// `fault-confinement`, once.
fn sabotage(injector: &logbus::FaultInjector) {
    let _ = injector;
}
