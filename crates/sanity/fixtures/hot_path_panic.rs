// Fixture: a single `.unwrap()` on a hot-path module. Linted as if it
// lived at `crates/logbus/src/broker.rs`; must trip exactly
// `hot-path-panic`, once. The string and comment below are decoys the
// stripper must blank.
fn lookup(map: &std::collections::HashMap<u32, u32>) -> u32 {
    let decoy = "this .unwrap() is inside a string and must not count";
    // and this .expect( sits in a comment
    let _ = decoy;
    *map.get(&1).unwrap()
}
