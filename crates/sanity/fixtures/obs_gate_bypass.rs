// Fixture: `obs::global()` outside the obs/bench crates bypasses the
// runtime gate. Linted as if at `crates/rill/src/runtime.rs`; must trip
// exactly `obs-gate`, once.
fn peek_metrics() -> usize {
    let registry = obs::global();
    registry.counters().len()
}
