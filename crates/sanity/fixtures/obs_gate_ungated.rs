// Fixture: timed telemetry on a hot path with no `obs::enabled(` check
// within the 15-line window. Linted as if at
// `crates/rill/src/operator.rs`; must trip exactly `obs-gate`, once.
fn record(hist: &obs::Histogram, started: std::time::Instant) {
    hist.observe(started.elapsed().as_micros() as u64);
}
