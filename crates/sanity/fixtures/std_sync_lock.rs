// Fixture: a direct `std::sync::Mutex` outside `shims/`, dodging the
// instrumented parking_lot shim. Linted as if at
// `crates/core/src/sender.rs`; must trip exactly `std-sync-lock`, once.
struct Shared {
    inner: std::sync::Mutex<Vec<u8>>,
}

impl Shared {
    fn push(&self, byte: u8) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.push(byte);
        }
    }
}
