//! `sanity` — the project-owned workspace lint pass.
//!
//! `cargo run -p sanity` walks every crate and shim source and enforces
//! the contracts DESIGN.md §7–§11 state in prose: no panics on hot
//! paths, instrumentation behind the runtime gate, the drained-Vec
//! batching contract, all locking through the `parking_lot` shim (so the
//! `check-sync` checker sees it), fault injection confined to the broker
//! layer, and doc/CHANGES hygiene. Known residue is carried in
//! `sanity.allow` (≤ 15 entries, each with a one-line justification);
//! unused allowlist entries are themselves errors so the list can only
//! shrink.
//!
//! The engine is deliberately lexical: comment/string interiors are
//! blanked and `#[cfg(test)]` items excluded before any pattern runs
//! (see [`strip`]), which keeps the tool dependency-free and fast while
//! avoiding the classic grep false positives.

pub mod lints;
pub mod strip;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Lint name (kebab-case, stable — allowlist entries key on it).
    pub lint: &'static str,
    /// Repo-relative path (unix separators).
    pub path: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human explanation.
    pub message: String,
}

impl Violation {
    pub(crate) fn new(
        lint: &'static str,
        path: &str,
        line: usize,
        excerpt: &str,
        message: String,
    ) -> Self {
        Violation {
            lint,
            path: path.to_string(),
            line,
            excerpt: excerpt.trim().to_string(),
            message,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}:{}", self.lint, self.path, self.line)?;
        if !self.excerpt.is_empty() {
            writeln!(f, "    {}", self.excerpt)?;
        }
        write!(f, "    = {}", self.message)
    }
}

/// Maximum allowlist size; the acceptance contract for this tool.
pub const ALLOWLIST_CAP: usize = 15;

/// One `sanity.allow` entry: `lint | path | line-substring | justification`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub lint: String,
    pub path: String,
    pub fragment: String,
    pub justification: String,
    /// Source line in `sanity.allow` (for unused-entry reports).
    pub source_line: usize,
}

/// Parses `sanity.allow`. Malformed lines are reported as violations
/// against the allowlist file itself.
pub fn parse_allowlist(text: &str, out: &mut Vec<Violation>) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if parts.len() != 4 || parts.iter().any(|p| p.is_empty()) {
            out.push(Violation::new(
                "allowlist",
                "sanity.allow",
                idx + 1,
                raw,
                "malformed entry; expected `lint | path | line-substring | justification`"
                    .to_string(),
            ));
            continue;
        }
        entries.push(AllowEntry {
            lint: parts[0].to_string(),
            path: parts[1].to_string(),
            fragment: parts[2].to_string(),
            justification: parts[3].to_string(),
            source_line: idx + 1,
        });
    }
    if entries.len() > ALLOWLIST_CAP {
        out.push(Violation::new(
            "allowlist",
            "sanity.allow",
            0,
            "",
            format!(
                "{} entries exceed the cap of {ALLOWLIST_CAP}; fix violations instead of \
                 growing the allowlist",
                entries.len()
            ),
        ));
    }
    entries
}

/// Applies the allowlist: suppressed violations are removed, and every
/// entry must suppress at least one finding (stale entries are errors).
pub fn apply_allowlist(violations: Vec<Violation>, allow: &[AllowEntry]) -> Vec<Violation> {
    let mut used = vec![false; allow.len()];
    let mut kept = Vec::new();
    'outer: for v in violations {
        for (i, a) in allow.iter().enumerate() {
            if v.lint == a.lint
                && (v.path == a.path || v.path.ends_with(&a.path))
                && v.excerpt.contains(&a.fragment)
            {
                used[i] = true;
                continue 'outer;
            }
        }
        kept.push(v);
    }
    for (i, a) in allow.iter().enumerate() {
        if !used[i] {
            kept.push(Violation::new(
                "allowlist",
                "sanity.allow",
                a.source_line,
                &format!("{} | {} | {}", a.lint, a.path, a.fragment),
                "stale allowlist entry suppresses nothing; delete it".to_string(),
            ));
        }
    }
    kept
}

/// Lints one source file given its repo-relative unix path.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    lints::lint_file(rel, &strip::preprocess(src), &mut out);
    out
}

/// Walks the workspace under `root` and returns every violation after
/// allowlist application, sorted for stable output.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();

    let mut files = Vec::new();
    for top in ["crates", "shims", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();

    for path in &files {
        let rel = unix_rel(root, path);
        // The engine's own fixtures are deliberately bad code.
        if rel.starts_with("crates/sanity/fixtures/") {
            continue;
        }
        match fs::read_to_string(path) {
            Ok(src) => lints::lint_file(&rel, &strip::preprocess(&src), &mut violations),
            Err(e) => violations.push(Violation::new(
                "io",
                &rel,
                0,
                "",
                format!("unreadable source file: {e}"),
            )),
        }
    }

    repo_hygiene(root, &mut violations);

    let allow_text = fs::read_to_string(root.join("sanity.allow")).unwrap_or_default();
    let allow = parse_allowlist(&allow_text, &mut violations);
    let mut final_violations = apply_allowlist(violations, &allow);
    final_violations
        .sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    final_violations
}

/// `doc-hygiene`: crate doc headers, CHANGES.md format, DESIGN.md
/// section index, README runbook line, and the workspace lints table
/// opt-in in every member manifest.
fn repo_hygiene(root: &Path, out: &mut Vec<Violation>) {
    for dir in ["crates", "shims"] {
        let Ok(entries) = fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let crate_dir = entry.path();
            if !crate_dir.is_dir() {
                continue;
            }
            let rel_crate = unix_rel(root, &crate_dir);
            for lib in ["src/lib.rs", "src/main.rs"] {
                let path = crate_dir.join(lib);
                if let Ok(src) = fs::read_to_string(&path) {
                    let first = src.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
                    if !first.trim_start().starts_with("//!") {
                        out.push(Violation::new(
                            "doc-hygiene",
                            &unix_rel(root, &path),
                            1,
                            first,
                            "crate root must open with a `//!` doc header".to_string(),
                        ));
                    }
                }
            }
            let manifest = crate_dir.join("Cargo.toml");
            if let Ok(toml) = fs::read_to_string(&manifest) {
                if !toml.contains("[lints]") || !toml.contains("workspace = true") {
                    out.push(Violation::new(
                        "doc-hygiene",
                        &unix_rel(root, &manifest),
                        0,
                        "",
                        format!(
                            "{rel_crate}/Cargo.toml must opt into the workspace lints table \
                             (`[lints]\\nworkspace = true`)"
                        ),
                    ));
                }
            }
        }
    }

    match fs::read_to_string(root.join("CHANGES.md")) {
        Ok(changes) => {
            for (idx, line) in changes.lines().enumerate() {
                if !line.trim().is_empty() && !line.starts_with("PR ") {
                    out.push(Violation::new(
                        "doc-hygiene",
                        "CHANGES.md",
                        idx + 1,
                        line,
                        "every CHANGES.md line must start with `PR <n> (<archetype>):`".to_string(),
                    ));
                }
            }
        }
        Err(_) => out.push(Violation::new(
            "doc-hygiene",
            "CHANGES.md",
            0,
            "",
            "CHANGES.md is missing".to_string(),
        )),
    }

    if let Ok(design) = fs::read_to_string(root.join("DESIGN.md")) {
        for section in ["## 7.", "## 8.", "## 9.", "## 10.", "## 11."] {
            if !design.contains(section) {
                out.push(Violation::new(
                    "doc-hygiene",
                    "DESIGN.md",
                    0,
                    "",
                    format!("missing `{section}` section"),
                ));
            }
        }
    }

    if let Ok(readme) = fs::read_to_string(root.join("README.md")) {
        if !readme.contains("cargo run -p sanity") {
            out.push(Violation::new(
                "doc-hygiene",
                "README.md",
                0,
                "",
                "README must document the `cargo run -p sanity` lint pass".to_string(),
            ));
        }
    }
}

/// Recursively collects `.rs` files (skipping `target/`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Repo-relative path with `/` separators.
fn unix_rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_suppresses_and_flags_stale() {
        let mut parse_errors = Vec::new();
        let allow = parse_allowlist(
            "# comment\n\
             hot-path-panic | crates/x/src/a.rs | .unwrap() | bounded by caller\n\
             obs-gate | crates/x/src/b.rs | never-matches | stale\n",
            &mut parse_errors,
        );
        assert!(parse_errors.is_empty());
        assert_eq!(allow.len(), 2);
        let v = vec![Violation::new(
            "hot-path-panic",
            "crates/x/src/a.rs",
            3,
            "let y = x.unwrap();",
            "m".to_string(),
        )];
        let kept = apply_allowlist(v, &allow);
        assert_eq!(kept.len(), 1, "stale entry must surface: {kept:?}");
        assert_eq!(kept[0].lint, "allowlist");
        assert!(kept[0].message.contains("stale"));
    }

    #[test]
    fn malformed_allowlist_line_is_reported() {
        let mut errors = Vec::new();
        parse_allowlist("only | three | fields\n", &mut errors);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].lint, "allowlist");
    }
}
