//! The lint catalog: each lint enforces one contract DESIGN.md states in
//! prose (§7 hot-path discipline, §8 observability gating, §9 batching
//! contract, §10 fault confinement, §11 this tool).

use crate::strip::Stripped;
use crate::Violation;

/// Hot-path modules: broker/log/handle tiers plus every engine
/// operator/collector/connector path. A panic here can poison a
/// measurement run, so failures must surface as typed errors.
const HOT_PATH: &[&str] = &[
    "crates/logbus/src/handle.rs",
    "crates/logbus/src/log.rs",
    "crates/logbus/src/broker.rs",
    "crates/logbus/src/cluster.rs",
    "crates/logbus/src/election.rs",
    "crates/logbus/src/topic.rs",
    "crates/logbus/src/segment.rs",
    "crates/logbus/src/telemetry.rs",
    "crates/rill/src/operator.rs",
    "crates/rill/src/sink.rs",
    "crates/rill/src/source.rs",
    "crates/dstream/src/rdd.rs",
    "crates/dstream/src/stream.rs",
    "crates/dstream/src/source.rs",
    "crates/apx/src/operator.rs",
    "crates/apx/src/stream.rs",
    "crates/apx/src/malhar.rs",
    "crates/beamline/src/pardo.rs",
    "crates/beamline/src/io.rs",
    "crates/beamline/src/coder.rs",
    "crates/beamline/src/runners/",
    "crates/core/src/sender.rs",
];

/// Panicking constructs forbidden on hot paths.
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Files allowed to bypass the `obs::enabled()` gate: the obs crate
/// itself and the benchmark driver's cold snapshot/reset path.
const GATE_BYPASS_OK: &[&str] = &["crates/obs/", "crates/bench/"];

/// Files where the broker's fault-injection machinery may appear; every
/// other layer interacts with faults only through `FaultPlan`.
const FAULT_HOME: &[&str] = &[
    "crates/logbus/src/fault.rs",
    "crates/logbus/src/broker.rs",
    "crates/logbus/src/handle.rs",
    "crates/logbus/src/cluster.rs",
    "crates/logbus/src/election.rs",
];

/// How many preceding lines an `obs::enabled()` gate may sit above a
/// telemetry recording site and still count as guarding it.
const GATE_WINDOW: usize = 15;

/// True when `rel` (unix-style, repo-relative) is a hot-path module.
pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATH.iter().any(|p| {
        if p.ends_with('/') {
            rel.contains(p)
        } else {
            rel == *p || rel.ends_with(p)
        }
    })
}

fn matches_any(rel: &str, set: &[&str]) -> bool {
    set.iter().any(|p| {
        if p.ends_with('/') {
            rel.contains(p)
        } else {
            rel == *p || rel.ends_with(p)
        }
    })
}

/// Runs every per-file lint over one preprocessed source file.
pub fn lint_file(rel: &str, src: &Stripped, out: &mut Vec<Violation>) {
    hot_path_panic(rel, src, out);
    obs_gate(rel, src, out);
    batch_contract(rel, src, out);
    std_sync_lock(rel, src, out);
    fault_confinement(rel, src, out);
    zero_copy(rel, src, out);
}

/// `hot-path-panic`: no `unwrap()`/`expect()`/`panic!` family on hot
/// paths (non-test code). Residue goes in `sanity.allow` with a
/// one-line justification.
fn hot_path_panic(rel: &str, src: &Stripped, out: &mut Vec<Violation>) {
    if !is_hot_path(rel) {
        return;
    }
    for line in src.lines.iter().filter(|l| !l.in_test) {
        for pat in PANIC_PATTERNS {
            if line.code.contains(pat) {
                out.push(Violation::new(
                    "hot-path-panic",
                    rel,
                    line.number,
                    &line.raw,
                    format!("`{pat}` on a hot-path module; return a typed error instead"),
                ));
            }
        }
    }
}

/// `obs-gate`: instrumentation must stay behind the runtime gate.
///
/// Two shapes: (a) `obs::global()` outside the obs crate / bench driver
/// bypasses the gated helpers entirely; (b) a `.observe(` telemetry
/// recording on a hot path must have `obs::enabled(` within the
/// preceding [`GATE_WINDOW`] lines (the fast path bails before timing).
fn obs_gate(rel: &str, src: &Stripped, out: &mut Vec<Violation>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains("obs::global()") && !matches_any(rel, GATE_BYPASS_OK) {
            out.push(Violation::new(
                "obs-gate",
                rel,
                line.number,
                &line.raw,
                "`obs::global()` bypasses the runtime gate; use the gated `obs::*` helpers"
                    .to_string(),
            ));
        }
        if line.code.contains(".observe(") && is_hot_path(rel) {
            let gated = src.lines[idx.saturating_sub(GATE_WINDOW)..=idx]
                .iter()
                .any(|l| l.code.contains("obs::enabled("));
            if !gated {
                out.push(Violation::new(
                    "obs-gate",
                    rel,
                    line.number,
                    &line.raw,
                    format!(
                        "telemetry `.observe(` with no `obs::enabled()` gate in the previous \
                         {GATE_WINDOW} lines"
                    ),
                ));
            }
        }
    }
}

/// `batch-contract`: every `fn collect_batch` body must drain its input
/// (`items` comes back empty, capacity intact — DESIGN.md §9). A body
/// that never calls `drain`/`clear`/`mem::take`/`mem::swap` and does not
/// delegate to another `collect_batch` cannot uphold that.
fn batch_contract(rel: &str, src: &Stripped, out: &mut Vec<Violation>) {
    let lines = &src.lines;
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        if line.in_test || !line.code.contains("fn collect_batch") {
            i += 1;
            continue;
        }
        // Find the body: brace-match from the signature's `{` (a bodyless
        // trait signature ends in `;` first and is skipped).
        let mut depth = 0usize;
        let mut entered = false;
        let mut body = String::new();
        let mut j = i;
        'scan: while j < lines.len() {
            // Body text starts *after* the opening brace: the signature
            // itself contains `collect_batch(` and must not satisfy the
            // delegation check below.
            for c in lines[j].code.chars() {
                if !entered {
                    if c == ';' {
                        break 'scan;
                    }
                    if c == '{' {
                        depth = 1;
                        entered = true;
                    }
                    continue;
                }
                if c == '{' {
                    depth += 1;
                } else if c == '}' {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break 'scan;
                    }
                }
                body.push(c);
            }
            body.push('\n');
            j += 1;
        }
        if entered {
            // `.append(` drains its `&mut Vec` argument; `invoke_batch(`
            // delegates to a batch consumer that owns the contract.
            let drains = [
                "drain(",
                "collect_batch(",
                "invoke_batch(",
                ".append(",
                ".clear()",
                "mem::take",
                "mem::swap",
            ]
            .iter()
            .any(|p| body.contains(p));
            if !drains {
                out.push(Violation::new(
                    "batch-contract",
                    rel,
                    line.number,
                    &line.raw,
                    "`collect_batch` body never drains `items`; the drained-Vec contract \
                     (DESIGN.md §9) requires it returns empty with capacity intact"
                        .to_string(),
                ));
            }
        }
        i = j.max(i) + 1;
    }
}

/// `std-sync-lock`: blocking `std::sync` primitives are forbidden outside
/// the shims — all workspace locking must go through the `parking_lot`
/// shim so the `check-sync` lock-order checker sees every acquisition.
fn std_sync_lock(rel: &str, src: &Stripped, out: &mut Vec<Violation>) {
    if rel.starts_with("shims/") || rel.contains("/shims/") {
        return;
    }
    for line in &src.lines {
        let code = &line.code;
        let names_primitive = ["Mutex", "RwLock", "Condvar", "Barrier"]
            .iter()
            .any(|p| code.contains(p));
        if names_primitive && (code.contains("std::sync::") || code.contains(" sync::")) {
            // `std::sync::atomic`, `Arc`, `OnceLock`, `mpsc` are fine.
            out.push(Violation::new(
                "std-sync-lock",
                rel,
                line.number,
                &line.raw,
                "blocking `std::sync` primitive outside the shims; use the `parking_lot` \
                 shim so `check-sync` can observe the lock"
                    .to_string(),
            ));
        }
    }
}

/// `fault-confinement`: the fault-injection machinery (`FaultInjector`,
/// the `fault_action`/`fault_gate` hooks) lives only in the broker
/// layer; every other crate configures faults exclusively via
/// `FaultPlan` installation.
fn fault_confinement(rel: &str, src: &Stripped, out: &mut Vec<Violation>) {
    if matches_any(rel, FAULT_HOME) {
        return;
    }
    for line in src.lines.iter().filter(|l| !l.in_test) {
        for pat in ["FaultInjector", ".fault_action(", ".fault_gate("] {
            if line.code.contains(pat) {
                out.push(Violation::new(
                    "fault-confinement",
                    rel,
                    line.number,
                    &line.raw,
                    format!("`{pat}` outside the broker fault layer; inject via `FaultPlan`"),
                ));
            }
        }
    }
}

/// Payload-copying constructs forbidden on hot paths (DESIGN.md §12):
/// record keys/values are refcounted `Bytes` slices of segment storage,
/// so the fault-free plane moves and refcount-bumps them — it never
/// materializes an owned byte copy per record.
const COPY_PATTERNS: &[&str] = &[
    ".to_vec()",
    ".to_owned()",
    "Bytes::copy_from_slice(",
    ".value.clone()",
    ".key.clone()",
];

/// `zero-copy`: no per-record payload copies on hot-path modules.
///
/// `Bytes` clones are refcount bumps and stay legal; what this bans is
/// converting a payload back into an owned `Vec`/`String`
/// (`.to_vec()`, `.to_owned()`, `Bytes::copy_from_slice`) or cloning a
/// record's key/value field where a move would do. Justified residue
/// goes in `sanity.allow`.
fn zero_copy(rel: &str, src: &Stripped, out: &mut Vec<Violation>) {
    if !is_hot_path(rel) {
        return;
    }
    for line in src.lines.iter().filter(|l| !l.in_test) {
        for pat in COPY_PATTERNS {
            if line.code.contains(pat) {
                out.push(Violation::new(
                    "zero-copy",
                    rel,
                    line.number,
                    &line.raw,
                    format!(
                        "`{pat}` copies payload bytes on a hot-path module; move the \
                         refcounted `Bytes` (or slice the arena) instead"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::preprocess;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        lint_file(rel, &preprocess(src), &mut out);
        out
    }

    #[test]
    fn hot_path_detection() {
        assert!(is_hot_path("crates/logbus/src/broker.rs"));
        assert!(is_hot_path("crates/logbus/src/cluster.rs"));
        assert!(is_hot_path("crates/logbus/src/election.rs"));
        assert!(is_hot_path("crates/beamline/src/runners/direct.rs"));
        assert!(!is_hot_path("crates/logbus/src/config.rs"));
        assert!(!is_hot_path("crates/core/src/report.rs"));
    }

    #[test]
    fn unwrap_in_test_mod_is_ignored() {
        let src = "fn live() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(run("crates/logbus/src/broker.rs", src).is_empty());
    }

    #[test]
    fn unwrap_outside_hot_path_is_ignored() {
        let src = "fn f() { Some(1).unwrap(); }\n";
        assert!(run("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn gated_observe_is_clean() {
        let src = "fn f(b: &B) {\n    if !obs::enabled() {\n        return;\n    }\n    telemetry::produce_path().observe(1);\n}\n";
        assert!(run("crates/logbus/src/broker.rs", src).is_empty());
    }

    #[test]
    fn payload_copy_on_hot_path_is_flagged() {
        let src = "fn f(r: &Record) -> Vec<u8> { r.value.to_vec() }\n";
        let found = run("crates/logbus/src/segment.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, "zero-copy");
        let src = "fn f(r: &Record) -> Bytes { r.value.clone() }\n";
        assert_eq!(run("crates/logbus/src/segment.rs", src).len(), 1);
    }

    #[test]
    fn payload_copy_off_hot_path_or_in_tests_is_ignored() {
        let src = "fn f(r: &Record) -> Vec<u8> { r.value.to_vec() }\n";
        assert!(run("crates/logbus/src/config.rs", src).is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    fn t(r: &Record) { r.value.to_vec(); }\n}\n";
        assert!(run("crates/logbus/src/segment.rs", src).is_empty());
    }

    #[test]
    fn bytes_refcount_clone_is_clean() {
        // Cloning a whole `Bytes` binding (refcount bump) stays legal;
        // only field-level key/value clones and owned conversions flag.
        let src = "fn f(b: &Bytes) -> Bytes { b.clone() }\n";
        assert!(run("crates/logbus/src/segment.rs", src).is_empty());
    }
}
