//! CLI for the workspace lint pass: `cargo run -p sanity`.
//!
//! Walks the repository (located from `CARGO_MANIFEST_DIR`, overridable
//! with `--root <path>`), runs every lint, applies `sanity.allow`, and
//! exits non-zero when findings remain. CI runs this as the `sanity`
//! job; see DESIGN.md §11.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: sanity [--root <repo-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`; see --help");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .and_then(|d| d.parent().and_then(|p| p.parent()).map(PathBuf::from))
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let violations = sanity::run(&root);
    if violations.is_empty() {
        println!("sanity: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!(
        "sanity: {} violation(s); fix them or carry a justified entry in sanity.allow",
        violations.len()
    );
    ExitCode::FAILURE
}
