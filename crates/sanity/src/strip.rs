//! Lexical preprocessing: comment/string stripping and test-region maps.
//!
//! Lints must not fire on the word `panic!` inside a doc comment or a
//! string literal, and must ignore `#[cfg(test)]` modules entirely. This
//! module reduces a source file to a byte-parallel "stripped" view where
//! comment and literal interiors are blanked to spaces (newlines kept),
//! then brace-matches `#[cfg(test)]` items to mark test-only lines.

/// A preprocessed source file ready for lexical lints.
pub struct Stripped {
    /// One entry per source line.
    pub lines: Vec<Line>,
}

/// One line of a preprocessed file.
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line with comment and string interiors blanked.
    pub code: String,
    /// The original text (used for violation excerpts).
    pub raw: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Preprocesses `src` into stripped, test-annotated lines.
pub fn preprocess(src: &str) -> Stripped {
    let stripped = blank_comments_and_strings(src);
    let test_ranges = test_byte_ranges(&stripped);

    let mut lines = Vec::new();
    let mut offset = 0usize;
    for (idx, (code, raw)) in stripped.lines().zip(src.lines()).enumerate() {
        let start = offset;
        offset += raw.len() + 1; // `lines()` strips the newline
        let in_test = test_ranges.iter().any(|&(a, b)| start >= a && start < b);
        lines.push(Line {
            number: idx + 1,
            code: code.to_string(),
            raw: raw.to_string(),
            in_test,
        });
    }
    Stripped { lines }
}

/// Scanner state for [`blank_comments_and_strings`].
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

/// Returns `src` with comment bodies and string/char literal interiors
/// replaced by spaces. Newlines survive so line numbers stay aligned.
fn blank_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match mode {
            Mode::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    mode = Mode::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'r' && matches!(b.get(i + 1), Some(&b'"') | Some(&b'#')) {
                    // Raw string: r"…", r#"…"#, r##"…"##, …
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        mode = Mode::RawStr(hashes);
                        out.resize(out.len() + (j - i + 1), b' ');
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == b'"' {
                    mode = Mode::Str;
                    out.push(b' ');
                    i += 1;
                } else if c == b'\'' {
                    // Char literal vs lifetime: a literal is '\…' or 'x'.
                    let escaped = b.get(i + 1) == Some(&b'\\');
                    let closed = b.get(i + 2) == Some(&b'\'');
                    if escaped || closed {
                        mode = Mode::Char;
                        out.push(b' ');
                        i += 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                if c == b'\n' {
                    mode = Mode::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::Str => {
                if c == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    mode = Mode::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && b.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        out.resize(out.len() + (j - i), b' ');
                        i = j;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::Char => {
                if c == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'\'' {
                    mode = Mode::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    out.truncate(b.len());
    String::from_utf8_lossy(&out).into_owned()
}

/// Byte ranges of `#[cfg(test)]` items (attribute through closing brace).
fn test_byte_ranges(stripped: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for marker in ["#[cfg(test)]", "#[cfg(all(test"] {
        let mut from = 0;
        while let Some(pos) = stripped[from..].find(marker) {
            let attr_start = from + pos;
            from = attr_start + marker.len();
            if let Some(open_rel) = stripped[attr_start..].find('{') {
                let open = attr_start + open_rel;
                let close = matching_brace(stripped.as_bytes(), open);
                ranges.push((attr_start, close));
            }
        }
    }
    ranges
}

/// Index just past the brace matching the `{` at `open` (or EOF).
fn matching_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        if c == b'{' {
            depth += 1;
        } else if c == b'}' {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"panic!\"; // unwrap()\nlet y = 1; /* expect( */\n";
        let s = blank_comments_and_strings(src);
        assert!(!s.contains("panic!"));
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("expect"));
        assert!(s.contains("let x ="));
        assert!(s.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let p = r#\"a.unwrap()\"#;\nlet q = 2;\n";
        let s = blank_comments_and_strings(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let q = 2;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }\n";
        let s = blank_comments_and_strings(src);
        assert!(s.contains("<'a>"));
        assert!(!s.contains("'x'"));
    }

    #[test]
    fn cfg_test_regions_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let p = preprocess(src);
        assert!(!p.lines[0].in_test);
        assert!(p.lines[2].in_test);
        assert!(p.lines[3].in_test);
        assert!(!p.lines[5].in_test);
    }
}
