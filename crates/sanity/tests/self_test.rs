//! Self-test: every fixture under `fixtures/` is a known-bad snippet
//! that must trip exactly one lint — no more, no fewer — when linted
//! under a representative hot-path location. Keeps the lint engine
//! honest about both false negatives and collateral findings.

use sanity::lint_source;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Asserts the fixture trips `lint` exactly once at the pretend path.
fn assert_trips_once(file: &str, rel: &str, lint: &str) {
    let found = lint_source(rel, &fixture(file));
    assert_eq!(
        found.len(),
        1,
        "{file} must trip exactly one violation, got: {found:?}"
    );
    assert_eq!(
        found[0].lint, lint,
        "{file} tripped the wrong lint: {found:?}"
    );
}

#[test]
fn hot_path_panic_fixture() {
    assert_trips_once(
        "hot_path_panic.rs",
        "crates/logbus/src/broker.rs",
        "hot-path-panic",
    );
}

#[test]
fn obs_gate_bypass_fixture() {
    assert_trips_once(
        "obs_gate_bypass.rs",
        "crates/rill/src/runtime.rs",
        "obs-gate",
    );
}

#[test]
fn obs_gate_ungated_observe_fixture() {
    assert_trips_once(
        "obs_gate_ungated.rs",
        "crates/rill/src/operator.rs",
        "obs-gate",
    );
}

#[test]
fn batch_contract_fixture() {
    assert_trips_once(
        "batch_contract.rs",
        "crates/rill/src/operator.rs",
        "batch-contract",
    );
}

#[test]
fn std_sync_lock_fixture() {
    assert_trips_once(
        "std_sync_lock.rs",
        "crates/core/src/sender.rs",
        "std-sync-lock",
    );
}

#[test]
fn fault_confinement_fixture() {
    assert_trips_once(
        "fault_confinement.rs",
        "crates/rill/src/runtime.rs",
        "fault-confinement",
    );
}

/// The fixtures are bad only *because of where they claim to live*: the
/// same panic fixture on a cold-path module is clean, and the ungated
/// observe is fine off the hot path. Guards against the lints becoming
/// workspace-wide bans they were never meant to be.
#[test]
fn fixtures_are_location_sensitive() {
    let cold = "crates/bench/src/report.rs";
    assert!(
        lint_source(cold, &fixture("hot_path_panic.rs")).is_empty(),
        "panic lint must only bite on hot-path modules"
    );
    assert!(
        lint_source(cold, &fixture("obs_gate_ungated.rs")).is_empty(),
        "ungated observe is allowed off the hot path"
    );
}

/// A gated observe on a hot path is clean: the idiom the lint demands.
#[test]
fn gated_observe_is_clean() {
    let src = r#"
fn record(hist: &obs::Histogram, started: std::time::Instant) {
    if !obs::enabled() {
        return;
    }
    hist.observe(started.elapsed().as_micros() as u64);
}
"#;
    let found = lint_source("crates/rill/src/operator.rs", src);
    assert!(found.is_empty(), "gated observe flagged: {found:?}");
}
