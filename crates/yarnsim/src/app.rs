//! Applications and their lifecycle.

use crate::container::ContainerId;
use std::fmt;

/// Identifier of a submitted application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApplicationId(pub u32);

impl fmt::Display for ApplicationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "application-{:04}", self.0)
    }
}

/// Lifecycle of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApplicationState {
    /// Accepted; the master container is allocated.
    Accepted,
    /// The application reported itself running.
    Running,
    /// Finished normally; all containers released.
    Finished,
    /// Failed; all containers released.
    Failed,
    /// Killed by the operator; all containers released.
    Killed,
}

impl ApplicationState {
    /// Whether the application can still request containers.
    pub fn is_active(self) -> bool {
        matches!(self, ApplicationState::Accepted | ApplicationState::Running)
    }
}

/// A submitted application and its containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Application {
    /// Application identifier.
    pub id: ApplicationId,
    /// Human-readable name supplied at submission.
    pub name: String,
    /// Current lifecycle state.
    pub state: ApplicationState,
    /// The application-master container (Apex's STRAM).
    pub master: ContainerId,
    /// All containers ever granted, including the master.
    pub containers: Vec<ContainerId>,
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` ({:?}, {} containers)",
            self.id,
            self.name,
            self.state,
            self.containers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_states() {
        assert!(ApplicationState::Accepted.is_active());
        assert!(ApplicationState::Running.is_active());
        assert!(!ApplicationState::Finished.is_active());
        assert!(!ApplicationState::Failed.is_active());
        assert!(!ApplicationState::Killed.is_active());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ApplicationId(12).to_string(), "application-0012");
        let app = Application {
            id: ApplicationId(1),
            name: "bench".into(),
            state: ApplicationState::Running,
            master: ContainerId(0),
            containers: vec![ContainerId(0)],
        };
        assert_eq!(
            app.to_string(),
            "application-0001 `bench` (Running, 1 containers)"
        );
    }
}
