//! Containers: allocated resource bundles tied to a node.

use crate::app::ApplicationId;
use crate::node::NodeId;
use crate::resource::Resource;
use std::fmt;

/// Identifier of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "container-{:06}", self.0)
    }
}

/// Lifecycle of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ContainerState {
    /// Granted by the scheduler but not yet launched.
    #[default]
    Allocated,
    /// Launched by its application.
    Running,
    /// Exited normally.
    Completed,
    /// Terminated by the resource manager or application.
    Killed,
}

impl ContainerState {
    /// Whether the container still holds node resources.
    pub fn holds_resources(self) -> bool {
        matches!(self, ContainerState::Allocated | ContainerState::Running)
    }
}

/// A logical bundle of resources tied to a certain node (paper §II-D),
/// granted to one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Container {
    /// Container identifier.
    pub id: ContainerId,
    /// Owning application.
    pub app: ApplicationId,
    /// Hosting node.
    pub node: NodeId,
    /// Granted resources.
    pub resource: Resource,
    /// Current lifecycle state.
    pub state: ContainerState,
    /// Whether this is the application's master container (Apex's STRAM
    /// runs in it).
    pub is_master: bool,
}

impl fmt::Display for Container {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} ({}{})",
            self.id,
            self.node,
            self.resource,
            if self.is_master { ", AM" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_resource_holding() {
        assert!(ContainerState::Allocated.holds_resources());
        assert!(ContainerState::Running.holds_resources());
        assert!(!ContainerState::Completed.holds_resources());
        assert!(!ContainerState::Killed.holds_resources());
    }

    #[test]
    fn display_formats() {
        let c = Container {
            id: ContainerId(3),
            app: ApplicationId(1),
            node: NodeId(0),
            resource: Resource::new(512, 1),
            state: ContainerState::Allocated,
            is_master: true,
        };
        assert_eq!(
            c.to_string(),
            "container-000003 on node-0 (<512MiB, 1 vcores>, AM)"
        );
    }
}
