//! Resource-manager error types.

use crate::app::ApplicationId;
use crate::container::ContainerId;
use crate::node::NodeId;
use crate::resource::Resource;
use std::fmt;

/// Convenience alias for resource-manager results.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by [`ResourceManager`](crate::ResourceManager)
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// No node can currently satisfy the request.
    InsufficientResources {
        /// The size that could not be placed.
        requested: Resource,
    },
    /// The referenced application is unknown.
    UnknownApplication(ApplicationId),
    /// The referenced container is unknown.
    UnknownContainer(ContainerId),
    /// The referenced node is unknown.
    UnknownNode(NodeId),
    /// The application is no longer active.
    ApplicationNotActive(ApplicationId),
    /// A container operation was invalid in its current state.
    InvalidContainerState {
        /// The container.
        container: ContainerId,
        /// What the caller attempted.
        operation: &'static str,
    },
    /// The pinned node of a request is unhealthy or lacks capacity.
    NodeUnavailable(NodeId),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InsufficientResources { requested } => {
                write!(f, "no node can satisfy request for {requested}")
            }
            Error::UnknownApplication(id) => write!(f, "unknown application {id}"),
            Error::UnknownContainer(id) => write!(f, "unknown container {id}"),
            Error::UnknownNode(id) => write!(f, "unknown node {id}"),
            Error::ApplicationNotActive(id) => write!(f, "application {id} is not active"),
            Error::InvalidContainerState {
                container,
                operation,
            } => {
                write!(
                    f,
                    "cannot {operation} container {container} in its current state"
                )
            }
            Error::NodeUnavailable(id) => write!(f, "node {id} is unavailable"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_concise() {
        let samples = vec![
            Error::InsufficientResources {
                requested: Resource::new(1, 1),
            },
            Error::UnknownApplication(ApplicationId(1)),
            Error::UnknownContainer(ContainerId(1)),
            Error::UnknownNode(NodeId(1)),
            Error::ApplicationNotActive(ApplicationId(1)),
            Error::InvalidContainerState {
                container: ContainerId(1),
                operation: "launch",
            },
            Error::NodeUnavailable(NodeId(1)),
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
            assert!(!e.to_string().ends_with('.'));
        }
    }
}
