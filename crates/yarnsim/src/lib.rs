//! `yarnsim` — a miniature cluster resource manager in the style of
//! Apache Hadoop YARN.
//!
//! Apache Apex runs on YARN: a **ResourceManager** hands out **containers**
//! (logical bundles of memory and vcores) on **NodeManager** nodes, and a
//! per-application **ApplicationMaster** (Apex's STRAM) coordinates the
//! application's containers. The paper configures Apex's parallelism via
//! the YARN vcore settings, so the reproduction needs the same moving
//! parts: the `apx` engine crate deploys its operators into `yarnsim`
//! containers.
//!
//! The simulation is synchronous and single-process: time advances via
//! [`ResourceManager::tick`] and liveness is tracked through explicit
//! [`ResourceManager::heartbeat`] calls, mirroring YARN's heartbeat
//! protocol without real timers.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use yarnsim::{Resource, ResourceManager, ResourceRequest};
//!
//! let mut rm = ResourceManager::new();
//! let node = rm.register_node(Resource::new(8192, 8));
//! let app = rm.submit_application("wordcount", Resource::new(1024, 1))?;
//! let containers = rm.allocate(app, &[ResourceRequest::new(Resource::new(2048, 2)); 2])?;
//! assert_eq!(containers.len(), 2);
//! assert_eq!(rm.node_info(node).unwrap().used.vcores, 5); // 1 AM + 2 * 2
//! # Ok(())
//! # }
//! ```

mod app;
mod container;
mod error;
mod node;
mod resource;
mod rm;
mod scheduler;

pub use app::{Application, ApplicationId, ApplicationState};
pub use container::{Container, ContainerId, ContainerState};
pub use error::{Error, Result};
pub use node::{NodeId, NodeInfo};
pub use resource::{Resource, ResourceRequest};
pub use rm::{ClusterMetrics, ResourceManager};
pub use scheduler::{CapacityScheduler, FifoScheduler, Scheduler};
