//! Node managers: per-node capacity and liveness bookkeeping.

use crate::resource::Resource;
use std::fmt;

/// Identifier of a cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Point-in-time view of a node, as reported by
/// [`ResourceManager::node_info`](crate::ResourceManager::node_info).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfo {
    /// Node identifier.
    pub id: NodeId,
    /// Total capacity.
    pub capacity: Resource,
    /// Resources currently allocated to containers.
    pub used: Resource,
    /// Tick of the last received heartbeat.
    pub last_heartbeat: u64,
    /// Whether the node is considered live.
    pub healthy: bool,
}

impl NodeInfo {
    /// Resources still available for allocation.
    pub fn available(&self) -> Resource {
        self.capacity.saturating_sub(self.used)
    }
}

/// Internal node state owned by the resource manager.
#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    pub(crate) id: NodeId,
    pub(crate) capacity: Resource,
    pub(crate) used: Resource,
    pub(crate) last_heartbeat: u64,
    pub(crate) healthy: bool,
    pub(crate) containers: Vec<crate::container::ContainerId>,
}

impl NodeState {
    pub(crate) fn new(id: NodeId, capacity: Resource, now: u64) -> Self {
        NodeState {
            id,
            capacity,
            used: Resource::zero(),
            last_heartbeat: now,
            healthy: true,
            containers: Vec::new(),
        }
    }

    pub(crate) fn available(&self) -> Resource {
        self.capacity.saturating_sub(self.used)
    }

    pub(crate) fn info(&self) -> NodeInfo {
        NodeInfo {
            id: self.id,
            capacity: self.capacity,
            used: self.used,
            last_heartbeat: self.last_heartbeat,
            healthy: self.healthy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_state_tracks_usage() {
        let mut n = NodeState::new(NodeId(1), Resource::new(1000, 4), 0);
        assert_eq!(n.available(), Resource::new(1000, 4));
        n.used += Resource::new(600, 3);
        assert_eq!(n.available(), Resource::new(400, 1));
        let info = n.info();
        assert_eq!(info.available(), Resource::new(400, 1));
        assert!(info.healthy);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node-7");
    }
}
