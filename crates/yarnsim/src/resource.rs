//! Resource algebra: memory/vcore bundles.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A logical bundle of cluster resources — YARN's `<memory, vCores>` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Resource {
    /// Memory in mebibytes.
    pub memory_mb: u64,
    /// Virtual cores. The paper sets Apex parallelism through this knob.
    pub vcores: u32,
}

impl Resource {
    /// Creates a resource bundle.
    pub fn new(memory_mb: u64, vcores: u32) -> Self {
        Resource { memory_mb, vcores }
    }

    /// The zero bundle.
    pub fn zero() -> Self {
        Resource::default()
    }

    /// Whether `other` fits inside `self` (component-wise).
    pub fn fits(&self, other: &Resource) -> bool {
        self.memory_mb >= other.memory_mb && self.vcores >= other.vcores
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(self, other: Resource) -> Resource {
        Resource {
            memory_mb: self.memory_mb.saturating_sub(other.memory_mb),
            vcores: self.vcores.saturating_sub(other.vcores),
        }
    }

    /// A crude scalar measure used by schedulers to rank nodes: free
    /// memory weighted with free cores.
    pub fn dominant_share(&self, total: &Resource) -> f64 {
        let mem = if total.memory_mb == 0 {
            0.0
        } else {
            self.memory_mb as f64 / total.memory_mb as f64
        };
        let cores = if total.vcores == 0 {
            0.0
        } else {
            f64::from(self.vcores) / f64::from(total.vcores)
        };
        mem.max(cores)
    }
}

impl Add for Resource {
    type Output = Resource;

    fn add(self, rhs: Resource) -> Resource {
        Resource {
            memory_mb: self.memory_mb + rhs.memory_mb,
            vcores: self.vcores + rhs.vcores,
        }
    }
}

impl AddAssign for Resource {
    fn add_assign(&mut self, rhs: Resource) {
        *self = *self + rhs;
    }
}

impl Sub for Resource {
    type Output = Resource;

    /// Component-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on underflow; use [`Resource::saturating_sub`] when the
    /// operands are unordered.
    fn sub(self, rhs: Resource) -> Resource {
        Resource {
            memory_mb: self.memory_mb - rhs.memory_mb,
            vcores: self.vcores - rhs.vcores,
        }
    }
}

impl SubAssign for Resource {
    fn sub_assign(&mut self, rhs: Resource) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}MiB, {} vcores>", self.memory_mb, self.vcores)
    }
}

/// A request for one container of a given size, optionally pinned to a
/// node (YARN's locality constraint, relaxed to "hard" here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceRequest {
    /// Requested container size.
    pub resource: Resource,
    /// Hard node constraint, if any.
    pub node: Option<crate::node::NodeId>,
}

impl ResourceRequest {
    /// Requests a container of `resource` on any node.
    pub fn new(resource: Resource) -> Self {
        ResourceRequest {
            resource,
            node: None,
        }
    }

    /// Pins the request to a node.
    pub fn on_node(mut self, node: crate::node::NodeId) -> Self {
        self.node = Some(node);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resource::new(1024, 2);
        let b = Resource::new(512, 1);
        assert_eq!(a + b, Resource::new(1536, 3));
        assert_eq!(a - b, Resource::new(512, 1));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn fits_is_componentwise() {
        let node = Resource::new(1024, 2);
        assert!(node.fits(&Resource::new(1024, 2)));
        assert!(node.fits(&Resource::new(0, 0)));
        assert!(!node.fits(&Resource::new(2048, 1)));
        assert!(!node.fits(&Resource::new(512, 3)));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Resource::new(100, 1);
        let b = Resource::new(200, 5);
        assert_eq!(a.saturating_sub(b), Resource::zero());
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = Resource::new(1, 1) - Resource::new(2, 1);
    }

    #[test]
    fn dominant_share() {
        let total = Resource::new(1000, 10);
        let free = Resource::new(500, 8);
        assert!((free.dominant_share(&total) - 0.8).abs() < 1e-9);
        assert_eq!(Resource::zero().dominant_share(&Resource::zero()), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(Resource::new(4096, 1).to_string(), "<4096MiB, 1 vcores>");
    }
}
