//! The resource manager: node registry, application lifecycle, and
//! container allocation.

use crate::app::{Application, ApplicationId, ApplicationState};
use crate::container::{Container, ContainerId, ContainerState};
use crate::error::{Error, Result};
use crate::node::{NodeId, NodeInfo, NodeState};
use crate::resource::{Resource, ResourceRequest};
use crate::scheduler::{CapacityScheduler, Scheduler};
use std::collections::HashMap;

/// Cluster-wide aggregate numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterMetrics {
    /// Registered, healthy nodes.
    pub healthy_nodes: usize,
    /// Total capacity over healthy nodes.
    pub total: Resource,
    /// Allocated resources over healthy nodes.
    pub used: Resource,
    /// Containers currently holding resources.
    pub live_containers: usize,
    /// Applications in an active state.
    pub active_applications: usize,
}

/// The YARN-style resource manager.
///
/// Deliberately synchronous: the caller is the cluster's only source of
/// concurrency, and the `apx` engine drives it from its launcher thread.
#[derive(Debug)]
pub struct ResourceManager {
    scheduler: Box<dyn Scheduler>,
    nodes: Vec<NodeState>,
    apps: HashMap<ApplicationId, Application>,
    containers: HashMap<ContainerId, Container>,
    next_node: u32,
    next_app: u32,
    next_container: u64,
    /// Logical time, advanced by [`ResourceManager::tick`].
    now: u64,
    /// Heartbeats older than this many ticks mark a node unhealthy.
    liveness_window: u64,
}

impl Default for ResourceManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceManager {
    /// Creates a resource manager with the capacity scheduler and a
    /// liveness window of 10 ticks.
    pub fn new() -> Self {
        Self::with_scheduler(Box::new(CapacityScheduler))
    }

    /// Creates a resource manager with an explicit placement strategy.
    pub fn with_scheduler(scheduler: Box<dyn Scheduler>) -> Self {
        ResourceManager {
            scheduler,
            nodes: Vec::new(),
            apps: HashMap::new(),
            containers: HashMap::new(),
            next_node: 0,
            next_app: 0,
            next_container: 0,
            now: 0,
            liveness_window: 10,
        }
    }

    /// Sets the heartbeat liveness window in ticks.
    pub fn set_liveness_window(&mut self, ticks: u64) {
        self.liveness_window = ticks;
    }

    /// Registers a node with the given capacity, returning its id.
    pub fn register_node(&mut self, capacity: Resource) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes.push(NodeState::new(id, capacity, self.now));
        id
    }

    /// Records a heartbeat from `node`, restoring health if it had been
    /// marked unhealthy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unregistered nodes.
    pub fn heartbeat(&mut self, node: NodeId) -> Result<()> {
        let now = self.now;
        let state = self.node_mut(node)?;
        state.last_heartbeat = now;
        state.healthy = true;
        Ok(())
    }

    /// Advances logical time by one tick and expires nodes whose last
    /// heartbeat is outside the liveness window. Containers on expired
    /// nodes are killed. Returns the ids of newly expired nodes.
    pub fn tick(&mut self) -> Vec<NodeId> {
        self.now += 1;
        let window = self.liveness_window;
        let now = self.now;
        let mut expired = Vec::new();
        for node in &mut self.nodes {
            if node.healthy && now.saturating_sub(node.last_heartbeat) > window {
                node.healthy = false;
                expired.push(node.id);
            }
        }
        for node in &expired {
            let doomed = self.containers_on(*node);
            for c in &doomed {
                // Unhealthy nodes keep no resources; release unconditionally.
                let _ = self.kill_container(c.id);
            }
            // Heartbeat expiry is a failure like any other: bring the lost
            // work back up on whatever healthy capacity remains.
            self.reallocate(&doomed);
        }
        expired
    }

    /// Simulates a machine failure: marks `node` unhealthy immediately,
    /// kills every container it hosted, and reallocates each one for its
    /// still-active application onto the remaining healthy nodes — the
    /// RM-side half of YARN's container recovery. Returns the replacement
    /// containers; work no healthy node can host is dropped, exactly as a
    /// capacity-starved real cluster would drop it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unregistered nodes.
    pub fn fail_node(&mut self, node: NodeId) -> Result<Vec<Container>> {
        let state = self.node_mut(node)?;
        state.healthy = false;
        let doomed = self.containers_on(node);
        for c in &doomed {
            let _ = self.kill_container(c.id);
        }
        Ok(self.reallocate(&doomed))
    }

    fn containers_on(&self, node: NodeId) -> Vec<Container> {
        self.containers
            .values()
            .filter(|c| c.node == node && c.state.holds_resources())
            .copied()
            .collect()
    }

    /// Places a replacement for each lost container, preserving size and
    /// master-ness. Applications that already finished stay down.
    fn reallocate(&mut self, lost: &[Container]) -> Vec<Container> {
        let mut replacements = Vec::new();
        for old in lost {
            let active = self.apps.get(&old.app).is_some_and(|a| a.state.is_active());
            if !active {
                continue;
            }
            let Ok(id) =
                self.place_container(old.app, ResourceRequest::new(old.resource), old.is_master)
            else {
                continue;
            };
            if let Some(app) = self.apps.get_mut(&old.app) {
                app.containers.push(id);
                if old.is_master {
                    app.master = id;
                }
            }
            replacements.push(self.containers[&id]);
        }
        replacements
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut NodeState> {
        self.nodes
            .iter_mut()
            .find(|n| n.id == id)
            .ok_or(Error::UnknownNode(id))
    }

    /// Point-in-time view of a node.
    pub fn node_info(&self, id: NodeId) -> Option<NodeInfo> {
        self.nodes.iter().find(|n| n.id == id).map(NodeState::info)
    }

    /// Views of all registered nodes.
    pub fn nodes(&self) -> Vec<NodeInfo> {
        self.nodes.iter().map(NodeState::info).collect()
    }

    /// Submits an application, synchronously allocating its master
    /// container of size `am_resource` (the Apex STRAM container).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InsufficientResources`] when no node can host the
    /// master container.
    pub fn submit_application(
        &mut self,
        name: impl Into<String>,
        am_resource: Resource,
    ) -> Result<ApplicationId> {
        let app_id = ApplicationId(self.next_app);
        let master = self.place_container(app_id, ResourceRequest::new(am_resource), true)?;
        self.next_app += 1;
        self.apps.insert(
            app_id,
            Application {
                id: app_id,
                name: name.into(),
                state: ApplicationState::Accepted,
                master,
                containers: vec![master],
            },
        );
        Ok(app_id)
    }

    /// Looks up an application.
    pub fn application(&self, id: ApplicationId) -> Option<&Application> {
        self.apps.get(&id)
    }

    /// Marks an application as running (the AM has started).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApplication`] or
    /// [`Error::ApplicationNotActive`].
    pub fn application_running(&mut self, id: ApplicationId) -> Result<()> {
        let app = self
            .apps
            .get_mut(&id)
            .ok_or(Error::UnknownApplication(id))?;
        if !app.state.is_active() {
            return Err(Error::ApplicationNotActive(id));
        }
        app.state = ApplicationState::Running;
        Ok(())
    }

    /// Allocates one container per request for an active application.
    /// All-or-nothing: if any request cannot be placed, nothing is
    /// allocated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApplication`],
    /// [`Error::ApplicationNotActive`], [`Error::NodeUnavailable`] for
    /// unsatisfiable pinned requests, or [`Error::InsufficientResources`].
    pub fn allocate(
        &mut self,
        app: ApplicationId,
        requests: &[ResourceRequest],
    ) -> Result<Vec<Container>> {
        let state = self
            .apps
            .get(&app)
            .ok_or(Error::UnknownApplication(app))?
            .state;
        if !state.is_active() {
            return Err(Error::ApplicationNotActive(app));
        }
        let mut granted = Vec::with_capacity(requests.len());
        for request in requests {
            match self.place_container(app, *request, false) {
                Ok(id) => granted.push(id),
                Err(e) => {
                    // Roll back the partial grant.
                    for id in granted {
                        let _ = self.kill_container(id);
                    }
                    return Err(e);
                }
            }
        }
        let app_entry = self.apps.get_mut(&app).expect("checked above");
        app_entry.containers.extend(granted.iter().copied());
        Ok(granted.iter().map(|id| self.containers[id]).collect())
    }

    fn place_container(
        &mut self,
        app: ApplicationId,
        request: ResourceRequest,
        is_master: bool,
    ) -> Result<ContainerId> {
        let node_id = match request.node {
            Some(pinned) => {
                let node = self
                    .nodes
                    .iter()
                    .find(|n| n.id == pinned)
                    .ok_or(Error::UnknownNode(pinned))?;
                if !node.healthy || !node.available().fits(&request.resource) {
                    return Err(Error::NodeUnavailable(pinned));
                }
                pinned
            }
            None => {
                let healthy: Vec<NodeInfo> = self
                    .nodes
                    .iter()
                    .filter(|n| n.healthy)
                    .map(NodeState::info)
                    .collect();
                let idx = self.scheduler.place(&healthy, request.resource).ok_or(
                    Error::InsufficientResources {
                        requested: request.resource,
                    },
                )?;
                healthy[idx].id
            }
        };
        let id = ContainerId(self.next_container);
        self.next_container += 1;
        let node = self.node_mut(node_id).expect("node exists");
        node.used += request.resource;
        node.containers.push(id);
        self.containers.insert(
            id,
            Container {
                id,
                app,
                node: node_id,
                resource: request.resource,
                state: ContainerState::Allocated,
                is_master,
            },
        );
        Ok(id)
    }

    /// Looks up a container.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Containers of an application that still hold resources.
    pub fn live_containers(&self, app: ApplicationId) -> Vec<Container> {
        self.containers
            .values()
            .filter(|c| c.app == app && c.state.holds_resources())
            .copied()
            .collect()
    }

    /// Transitions a container from `Allocated` to `Running`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownContainer`] or
    /// [`Error::InvalidContainerState`].
    pub fn launch_container(&mut self, id: ContainerId) -> Result<()> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(Error::UnknownContainer(id))?;
        if c.state != ContainerState::Allocated {
            return Err(Error::InvalidContainerState {
                container: id,
                operation: "launch",
            });
        }
        c.state = ContainerState::Running;
        Ok(())
    }

    /// Completes a running container, releasing its resources.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownContainer`] or
    /// [`Error::InvalidContainerState`].
    pub fn complete_container(&mut self, id: ContainerId) -> Result<()> {
        self.finish_container(id, ContainerState::Completed, "complete")
    }

    /// Kills a container in any resource-holding state, releasing its
    /// resources.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownContainer`] or
    /// [`Error::InvalidContainerState`] when the container is already
    /// finished.
    pub fn kill_container(&mut self, id: ContainerId) -> Result<()> {
        self.finish_container(id, ContainerState::Killed, "kill")
    }

    fn finish_container(
        &mut self,
        id: ContainerId,
        target: ContainerState,
        op: &'static str,
    ) -> Result<()> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(Error::UnknownContainer(id))?;
        if !c.state.holds_resources() {
            return Err(Error::InvalidContainerState {
                container: id,
                operation: op,
            });
        }
        if target == ContainerState::Completed && c.state != ContainerState::Running {
            return Err(Error::InvalidContainerState {
                container: id,
                operation: op,
            });
        }
        c.state = target;
        let (node, resource) = (c.node, c.resource);
        let node = self.node_mut(node).expect("node exists");
        node.used = node.used.saturating_sub(resource);
        node.containers.retain(|&c| c != id);
        Ok(())
    }

    /// Finishes an application with the given terminal state, releasing
    /// every live container.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApplication`]; finishing an already
    /// finished application is an error via
    /// [`Error::ApplicationNotActive`].
    pub fn finish_application(&mut self, id: ApplicationId, state: ApplicationState) -> Result<()> {
        debug_assert!(!state.is_active(), "finish requires a terminal state");
        let app = self
            .apps
            .get_mut(&id)
            .ok_or(Error::UnknownApplication(id))?;
        if !app.state.is_active() {
            return Err(Error::ApplicationNotActive(id));
        }
        app.state = state;
        let live: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| c.app == id && c.state.holds_resources())
            .map(|c| c.id)
            .collect();
        for c in live {
            let _ = self.kill_container(c);
        }
        Ok(())
    }

    /// Cluster-wide aggregate numbers.
    pub fn metrics(&self) -> ClusterMetrics {
        let mut m = ClusterMetrics::default();
        for n in self.nodes.iter().filter(|n| n.healthy) {
            m.healthy_nodes += 1;
            m.total += n.capacity;
            m.used += n.used;
        }
        m.live_containers = self
            .containers
            .values()
            .filter(|c| c.state.holds_resources())
            .count();
        m.active_applications = self.apps.values().filter(|a| a.state.is_active()).count();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FifoScheduler;

    fn two_node_rm() -> (ResourceManager, NodeId, NodeId) {
        let mut rm = ResourceManager::new();
        let a = rm.register_node(Resource::new(4096, 4));
        let b = rm.register_node(Resource::new(4096, 4));
        (rm, a, b)
    }

    #[test]
    fn submit_allocates_master() {
        let (mut rm, _, _) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        let info = rm.application(app).unwrap();
        assert_eq!(info.state, ApplicationState::Accepted);
        assert!(rm.container(info.master).unwrap().is_master);
        assert_eq!(rm.metrics().live_containers, 1);
    }

    #[test]
    fn allocation_is_all_or_nothing() {
        let (mut rm, _, _) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        // 3 containers of 3 vcores cannot fit on 2 nodes with 4 cores each
        // (first takes one node down to 1 core, second takes the other).
        let reqs = vec![ResourceRequest::new(Resource::new(1024, 3)); 3];
        let before = rm.metrics().used;
        let err = rm.allocate(app, &reqs).unwrap_err();
        assert!(matches!(err, Error::InsufficientResources { .. }));
        assert_eq!(
            rm.metrics().used,
            before,
            "rollback must release partial grants"
        );
    }

    #[test]
    fn pinned_requests() {
        let (mut rm, a, b) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        let granted = rm
            .allocate(
                app,
                &[ResourceRequest::new(Resource::new(1024, 1)).on_node(b)],
            )
            .unwrap();
        assert_eq!(granted[0].node, b);
        // Pinning to a full node fails.
        let too_big = ResourceRequest::new(Resource::new(8192, 1)).on_node(a);
        assert!(matches!(
            rm.allocate(app, &[too_big]),
            Err(Error::NodeUnavailable(n)) if n == a
        ));
    }

    #[test]
    fn container_lifecycle() {
        let (mut rm, _, _) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        let c = rm
            .allocate(app, &[ResourceRequest::new(Resource::new(256, 1))])
            .unwrap()[0]
            .id;
        assert!(
            rm.complete_container(c).is_err(),
            "cannot complete before launch"
        );
        rm.launch_container(c).unwrap();
        assert!(rm.launch_container(c).is_err(), "cannot launch twice");
        rm.complete_container(c).unwrap();
        assert!(
            rm.kill_container(c).is_err(),
            "finished containers cannot be killed"
        );
        assert_eq!(rm.container(c).unwrap().state, ContainerState::Completed);
    }

    #[test]
    fn finish_application_releases_everything() {
        let (mut rm, _, _) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        rm.allocate(app, &[ResourceRequest::new(Resource::new(256, 1)); 3])
            .unwrap();
        assert_eq!(rm.metrics().live_containers, 4);
        rm.finish_application(app, ApplicationState::Finished)
            .unwrap();
        assert_eq!(rm.metrics().live_containers, 0);
        assert_eq!(rm.metrics().used, Resource::zero());
        assert!(matches!(
            rm.finish_application(app, ApplicationState::Killed),
            Err(Error::ApplicationNotActive(_))
        ));
        assert!(matches!(
            rm.allocate(app, &[ResourceRequest::new(Resource::new(1, 1))]),
            Err(Error::ApplicationNotActive(_))
        ));
    }

    #[test]
    fn heartbeat_expiry_kills_containers() {
        let (mut rm, a, b) = two_node_rm();
        rm.set_liveness_window(2);
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        rm.allocate(
            app,
            &[
                ResourceRequest::new(Resource::new(256, 1)).on_node(a),
                ResourceRequest::new(Resource::new(256, 1)).on_node(b),
            ],
        )
        .unwrap();
        // Keep b alive, let a expire.
        for _ in 0..4 {
            rm.heartbeat(b).unwrap();
            let expired = rm.tick();
            for n in &expired {
                assert_eq!(*n, a);
            }
        }
        let info_a = rm.node_info(a).unwrap();
        let info_b = rm.node_info(b).unwrap();
        assert!(!info_a.healthy);
        assert!(info_b.healthy);
        assert_eq!(
            info_a.used,
            Resource::zero(),
            "expired node released containers"
        );
        assert!(info_b.used.vcores >= 1);
        // A heartbeat revives the node.
        rm.heartbeat(a).unwrap();
        assert!(rm.node_info(a).unwrap().healthy);
    }

    #[test]
    fn fail_node_reallocates_onto_healthy_nodes() {
        let (mut rm, a, b) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        rm.allocate(
            app,
            &[
                ResourceRequest::new(Resource::new(256, 1)).on_node(a),
                ResourceRequest::new(Resource::new(256, 1)).on_node(a),
            ],
        )
        .unwrap();
        let live_before = rm.metrics().live_containers;
        let moved = rm.fail_node(a).unwrap();
        let info_a = rm.node_info(a).unwrap();
        assert!(!info_a.healthy);
        assert_eq!(info_a.used, Resource::zero());
        assert!(moved.iter().all(|c| c.node == b));
        assert_eq!(
            rm.metrics().live_containers,
            live_before,
            "every lost container came back on the healthy node"
        );
        let tracked = &rm.application(app).unwrap().containers;
        assert!(moved.iter().all(|c| tracked.contains(&c.id)));
    }

    #[test]
    fn fail_node_moves_the_application_master() {
        let (mut rm, _, _) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        let master = rm.application(app).unwrap().master;
        let home = rm.container(master).unwrap().node;
        let moved = rm.fail_node(home).unwrap();
        let new_master = rm.application(app).unwrap().master;
        assert_ne!(new_master, master);
        assert_eq!(moved[0].id, new_master);
        assert!(rm.container(new_master).unwrap().is_master);
        assert_ne!(rm.container(new_master).unwrap().node, home);
    }

    #[test]
    fn fail_node_without_capacity_drops_work() {
        let mut rm = ResourceManager::new();
        let only = rm.register_node(Resource::new(1024, 4));
        rm.submit_application("bench", Resource::new(512, 1))
            .unwrap();
        let moved = rm.fail_node(only).unwrap();
        assert!(moved.is_empty(), "no healthy node can host the master");
        assert_eq!(rm.metrics().live_containers, 0);
        assert_eq!(rm.metrics().healthy_nodes, 0);
        assert!(rm.fail_node(NodeId(9)).is_err());
    }

    #[test]
    fn heartbeat_expiry_reallocates_containers() {
        let (mut rm, a, b) = two_node_rm();
        rm.set_liveness_window(2);
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        rm.allocate(
            app,
            &[ResourceRequest::new(Resource::new(256, 1)).on_node(a)],
        )
        .unwrap();
        let live_before = rm.metrics().live_containers;
        for _ in 0..4 {
            rm.heartbeat(b).unwrap();
            rm.tick();
        }
        assert!(!rm.node_info(a).unwrap().healthy);
        assert_eq!(
            rm.metrics().live_containers,
            live_before,
            "the expired node's work moved over"
        );
        assert!(rm.live_containers(app).iter().all(|c| c.node == b));
    }

    #[test]
    fn fifo_scheduler_packs_first_node() {
        let mut rm = ResourceManager::with_scheduler(Box::new(FifoScheduler));
        let a = rm.register_node(Resource::new(4096, 8));
        let _b = rm.register_node(Resource::new(4096, 8));
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        let granted = rm
            .allocate(app, &[ResourceRequest::new(Resource::new(256, 1)); 3])
            .unwrap();
        assert!(granted.iter().all(|c| c.node == a));
    }

    #[test]
    fn capacity_scheduler_balances() {
        let (mut rm, a, b) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 1))
            .unwrap();
        let granted = rm
            .allocate(app, &[ResourceRequest::new(Resource::new(512, 1)); 2])
            .unwrap();
        let nodes: std::collections::HashSet<NodeId> = granted.iter().map(|c| c.node).collect();
        assert_eq!(nodes.len(), 2, "containers should spread over {a} and {b}");
    }

    #[test]
    fn unknown_ids_error() {
        let mut rm = ResourceManager::new();
        assert!(rm.heartbeat(NodeId(9)).is_err());
        assert!(rm.launch_container(ContainerId(9)).is_err());
        assert!(rm.allocate(ApplicationId(9), &[]).is_err());
        assert!(rm.application_running(ApplicationId(9)).is_err());
        assert!(rm
            .finish_application(ApplicationId(9), ApplicationState::Finished)
            .is_err());
        assert!(rm.node_info(NodeId(9)).is_none());
        assert!(rm.container(ContainerId(9)).is_none());
    }

    #[test]
    fn submission_fails_on_empty_cluster() {
        let mut rm = ResourceManager::new();
        assert!(matches!(
            rm.submit_application("x", Resource::new(1, 1)),
            Err(Error::InsufficientResources { .. })
        ));
    }

    #[test]
    fn metrics_aggregate() {
        let (mut rm, _, _) = two_node_rm();
        let app = rm
            .submit_application("bench", Resource::new(512, 2))
            .unwrap();
        rm.application_running(app).unwrap();
        let m = rm.metrics();
        assert_eq!(m.healthy_nodes, 2);
        assert_eq!(m.total, Resource::new(8192, 8));
        assert_eq!(m.used, Resource::new(512, 2));
        assert_eq!(m.active_applications, 1);
    }
}
