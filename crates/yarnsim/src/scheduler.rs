//! Container placement strategies.

use crate::node::NodeInfo;
use crate::resource::Resource;

/// Picks a node for one container request.
///
/// Implementations see only healthy nodes with their current usage and
/// must return the index of a node whose available resources fit the
/// request, or `None` when nothing fits.
pub trait Scheduler: Send + Sync + std::fmt::Debug {
    /// Chooses an index into `nodes` for a container of size `request`.
    fn place(&self, nodes: &[NodeInfo], request: Resource) -> Option<usize>;
}

/// First-fit placement in node registration order, like YARN's FIFO
/// scheduler's behaviour under a single queue.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn place(&self, nodes: &[NodeInfo], request: Resource) -> Option<usize> {
        nodes.iter().position(|n| n.available().fits(&request))
    }
}

/// Least-loaded placement: picks the fitting node with the smallest
/// dominant share of used resources, approximating the balancing effect of
/// YARN's capacity scheduler on a single queue.
#[derive(Debug, Default, Clone, Copy)]
pub struct CapacityScheduler;

impl Scheduler for CapacityScheduler {
    fn place(&self, nodes: &[NodeInfo], request: Resource) -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.available().fits(&request))
            .min_by(|(_, a), (_, b)| {
                let sa = a.used.dominant_share(&a.capacity);
                let sb = b.used.dominant_share(&b.capacity);
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn node(id: u32, cap: Resource, used: Resource) -> NodeInfo {
        NodeInfo {
            id: NodeId(id),
            capacity: cap,
            used,
            last_heartbeat: 0,
            healthy: true,
        }
    }

    #[test]
    fn fifo_takes_first_fit() {
        let a = node(0, Resource::new(100, 4), Resource::new(100, 4)); // full
        let b = node(1, Resource::new(100, 4), Resource::zero());
        let c = node(2, Resource::new(100, 4), Resource::zero());
        let nodes = vec![a, b, c];
        let s = FifoScheduler;
        assert_eq!(s.place(&nodes, Resource::new(50, 1)), Some(1));
    }

    #[test]
    fn capacity_balances() {
        let a = node(0, Resource::new(100, 4), Resource::new(80, 1));
        let b = node(1, Resource::new(100, 4), Resource::new(10, 1));
        let nodes = vec![a, b];
        let s = CapacityScheduler;
        assert_eq!(s.place(&nodes, Resource::new(10, 1)), Some(1));
    }

    #[test]
    fn nothing_fits() {
        let a = node(0, Resource::new(10, 1), Resource::zero());
        let nodes = vec![a];
        assert_eq!(FifoScheduler.place(&nodes, Resource::new(20, 1)), None);
        assert_eq!(CapacityScheduler.place(&nodes, Resource::new(20, 1)), None);
    }

    #[test]
    fn empty_cluster() {
        let nodes: Vec<NodeInfo> = Vec::new();
        assert_eq!(FifoScheduler.place(&nodes, Resource::new(1, 1)), None);
        assert_eq!(CapacityScheduler.place(&nodes, Resource::new(1, 1)), None);
    }
}
