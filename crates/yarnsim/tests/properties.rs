//! Property-based tests of the resource manager: accounting invariants
//! under arbitrary allocate/release sequences.

use proptest::prelude::*;
use yarnsim::{ApplicationState, Resource, ResourceManager, ResourceRequest};

#[derive(Debug, Clone)]
enum Op {
    Allocate { memory: u64, vcores: u32 },
    CompleteOldest,
    FinishApp,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (64u64..2048, 1u32..3).prop_map(|(memory, vcores)| Op::Allocate { memory, vcores }),
        Just(Op::CompleteOldest),
        Just(Op::FinishApp),
    ]
}

proptest! {
    /// Under any operation sequence: used <= capacity on every node, and
    /// the cluster aggregate equals the sum of live container resources.
    #[test]
    fn accounting_invariants(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut rm = ResourceManager::new();
        rm.register_node(Resource::new(8 * 1024, 8));
        rm.register_node(Resource::new(8 * 1024, 8));
        let mut app = rm.submit_application("prop", Resource::new(256, 1)).unwrap();
        let mut live: Vec<yarnsim::ContainerId> = Vec::new();
        let mut live_sum = Resource::new(256, 1); // the AM container

        for op in ops {
            match op {
                Op::Allocate { memory, vcores } => {
                    let request = ResourceRequest::new(Resource::new(memory, vcores));
                    match rm.allocate(app, &[request]) {
                        Ok(granted) => {
                            rm.launch_container(granted[0].id).unwrap();
                            live.push(granted[0].id);
                            live_sum += granted[0].resource;
                        }
                        Err(yarnsim::Error::InsufficientResources { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(e.to_string())),
                    }
                }
                Op::CompleteOldest => {
                    if !live.is_empty() {
                        let id = live.remove(0);
                        let resource = rm.container(id).unwrap().resource;
                        rm.complete_container(id).unwrap();
                        live_sum = live_sum.saturating_sub(resource);
                    }
                }
                Op::FinishApp => {
                    rm.finish_application(app, ApplicationState::Finished).unwrap();
                    live.clear();
                    // A fresh application replaces it.
                    app = rm.submit_application("prop-next", Resource::new(256, 1)).unwrap();
                    live_sum = Resource::new(256, 1);
                }
            }

            // Invariants hold after every step.
            for node in rm.nodes() {
                prop_assert!(node.capacity.fits(&node.used), "overcommitted node {node:?}");
            }
            let metrics = rm.metrics();
            prop_assert_eq!(metrics.used, live_sum);
            prop_assert_eq!(metrics.live_containers, live.len() + 1, "live + AM");
        }
    }

    /// Allocation is all-or-nothing: after a failed multi-request nothing
    /// changed.
    #[test]
    fn failed_allocation_changes_nothing(count in 1usize..10, vcores in 1u32..8) {
        let mut rm = ResourceManager::new();
        rm.register_node(Resource::new(4 * 1024, 4));
        let app = rm.submit_application("prop", Resource::new(128, 1)).unwrap();
        let before = rm.metrics();
        let requests = vec![ResourceRequest::new(Resource::new(512, vcores)); count];
        let result = rm.allocate(app, &requests);
        let after = rm.metrics();
        match result {
            Ok(granted) => prop_assert_eq!(granted.len(), count),
            Err(_) => {
                prop_assert_eq!(before.used, after.used);
                prop_assert_eq!(before.live_containers, after.live_containers);
            }
        }
    }
}
