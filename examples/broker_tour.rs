//! A tour of the `logbus` broker substrate: topics, producers,
//! consumers, replication, and the LogAppendTime-based measurement trick
//! the benchmark is built on.
//!
//! ```sh
//! cargo run --example broker_tour
//! ```

use logbus::{
    Acks, Broker, Cluster, ClusterConfig, Consumer, Producer, ProducerConfig, Record,
    TimestampType, TopicConfig, TopicDescription,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- Single broker: produce, consume, seek. ---
    let broker = Broker::new();
    broker.create_topic(
        "events",
        TopicConfig::default().timestamp_type(TimestampType::LogAppendTime),
    )?;

    let mut producer = Producer::with_config(
        broker.clone(),
        ProducerConfig {
            acks: Acks::Leader,
            batch_records: 8,
            ..ProducerConfig::default()
        },
    );
    for i in 0..32 {
        producer.send("events", Record::from_value(format!("event-{i}")))?;
    }
    producer.close()?;
    println!("produced 32 records, metrics: {:?}", producer.metrics());

    let mut consumer = Consumer::new(broker.clone());
    consumer.assign("events", 0)?;
    let first_batch = consumer.poll(10)?;
    println!(
        "first poll: {} records, offsets {}..{}",
        first_batch.len(),
        first_batch[0].offset,
        first_batch.last().unwrap().offset
    );
    consumer.seek("events", 0, 30)?;
    println!(
        "after seek(30): {:?}",
        consumer
            .poll(10)?
            .iter()
            .map(|r| r.offset)
            .collect::<Vec<_>>()
    );

    // --- The measurement trick (paper §III-A3): the broker stamps every
    // append, so the time between the first and last output record is a
    // system-independent execution time. ---
    let description = TopicDescription::describe(&broker, "events")?;
    println!(
        "LogAppendTime span over the topic: {:.6}s across {} records",
        description.append_time_span_seconds().unwrap_or(0.0),
        description.total_records()
    );

    // --- A replicated cluster, like the paper's three Kafka nodes. ---
    let cluster = Cluster::new(ClusterConfig { brokers: 3 });
    cluster.create_topic("replicated", TopicConfig::default().replication_factor(3))?;
    for i in 0..5 {
        cluster.produce("replicated", 0, Record::from_value(format!("r{i}")))?;
    }
    let leader = cluster.leader_of("replicated", 0)?;
    println!("cluster: leader of replicated/0 is broker {leader}");
    for b in 0..3 {
        let n = cluster.broker(b).latest_offset("replicated", 0)?;
        println!("  broker {b} holds {n} replica records");
    }
    Ok(())
}
