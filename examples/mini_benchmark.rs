//! A miniature end-to-end benchmark campaign: the full 12-setup matrix
//! over all four queries at reduced scale, rendered as the paper's
//! figures.
//!
//! ```sh
//! STREAMBENCH_RECORDS=10000 STREAMBENCH_RUNS=2 cargo run --release --example mini_benchmark
//! ```

use std::error::Error;
use streambench_core::{report, BenchConfig, BenchmarkRunner, Query};

fn main() -> Result<(), Box<dyn Error>> {
    let config = BenchConfig::default();
    println!(
        "mini benchmark: {} records, {} runs per setup, parallelisms {:?}\n",
        config.records, config.runs, config.parallelisms
    );
    let runner = BenchmarkRunner::new(config);

    let mut all = Vec::new();
    for query in Query::ALL {
        let measurements = runner.run_query(query)?;
        let rows = report::average_times(&measurements, query);
        println!(
            "{}",
            report::render_bars(
                &format!("Average execution times — {query} query"),
                &rows,
                "s"
            )
        );
        all.extend(measurements);
    }

    for query in Query::ALL {
        let rows = report::slowdown_factors(&all, query);
        println!(
            "{}",
            report::render_bars(&format!("Slowdown factor sf(dsps, {query})"), &rows, "x")
        );
    }
    Ok(())
}
