//! Native vs. abstraction layer: run the grep query both ways on each
//! engine and print the measured slowdown — the paper's core experiment
//! in miniature.
//!
//! ```sh
//! STREAMBENCH_RECORDS=20000 cargo run --release --example native_vs_beam
//! ```

use logbus::{Broker, TopicConfig};
use std::error::Error;
use streambench_core::{
    beam_pipeline, fresh_yarn_cluster, measure, native_apx, native_dstream, native_rill,
    send_workload, Query, SenderConfig,
};

fn main() -> Result<(), Box<dyn Error>> {
    let records: u64 = std::env::var("STREAMBENCH_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let query = Query::Grep;

    let broker = Broker::new();
    // Simulate the remote broker cluster's network round trip.
    broker.set_request_latency_micros(150);
    broker.create_topic("input", TopicConfig::default())?;
    send_workload(
        &broker,
        "input",
        &SenderConfig {
            records,
            ..SenderConfig::default()
        },
    )?;
    println!(
        "loaded {records} records; running `{query}` natively and via the abstraction layer\n"
    );

    let fresh_topic = |name: &str| -> Result<String, Box<dyn Error>> {
        let topic = format!("out-{name}");
        broker.create_topic(&topic, TopicConfig::default())?;
        Ok(topic)
    };

    let mut results: Vec<(&str, f64, f64)> = Vec::new();

    // rill / Flink analog.
    let native = fresh_topic("rill-native")?;
    native_rill(&broker, query, "input", &native, 1)?;
    let t_native = measure(&broker, &native)?.execution_seconds;
    let beam = fresh_topic("rill-beam")?;
    beamline::PipelineRunner::run(
        &beamline::runners::RillRunner::new(),
        &beam_pipeline(&broker, query, "input", &beam),
    )?;
    results.push((
        "Flink analog (rill)",
        t_native,
        measure(&broker, &beam)?.execution_seconds,
    ));

    // dstream / Spark analog.
    let native = fresh_topic("dstream-native")?;
    native_dstream(&broker, query, "input", &native, 1, 10_000)?;
    let t_native = measure(&broker, &native)?.execution_seconds;
    let beam = fresh_topic("dstream-beam")?;
    beamline::PipelineRunner::run(
        &beamline::runners::DStreamRunner::new(),
        &beam_pipeline(&broker, query, "input", &beam),
    )?;
    results.push((
        "Spark analog (dstream)",
        t_native,
        measure(&broker, &beam)?.execution_seconds,
    ));

    // apx / Apex analog.
    let native = fresh_topic("apx-native")?;
    let mut rm = fresh_yarn_cluster();
    native_apx(&broker, query, "input", &native, 1, &mut rm)?;
    let t_native = measure(&broker, &native)?.execution_seconds;
    let beam = fresh_topic("apx-beam")?;
    beamline::PipelineRunner::run(
        &beamline::runners::ApxRunner::new(),
        &beam_pipeline(&broker, query, "input", &beam),
    )?;
    results.push((
        "Apex analog (apx)",
        t_native,
        measure(&broker, &beam)?.execution_seconds,
    ));

    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "system", "native", "beam", "slowdown"
    );
    for (label, native, beam) in results {
        println!(
            "{label:<24} {native:>9.3}s {beam:>9.3}s {:>9.1}x",
            if native > 0.0 {
                beam / native
            } else {
                f64::NAN
            }
        );
    }
    Ok(())
}
