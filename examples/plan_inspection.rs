//! Execution-plan inspection: print the native grep plan (the paper's
//! Fig. 12 — three elements) next to the abstraction-layer plan
//! (Fig. 13 — seven elements).
//!
//! ```sh
//! cargo run --example plan_inspection
//! ```

use logbus::{Broker, TopicConfig};
use std::error::Error;
use streambench_core::{beam_pipeline, queries, Query};

fn main() -> Result<(), Box<dyn Error>> {
    let broker = Broker::new();
    broker.create_topic("input", TopicConfig::default())?;
    broker.create_topic("output", TopicConfig::default())?;

    println!("=== Native grep execution plan (paper Fig. 12) ===");
    let native = queries::native_rill_plan(&broker, Query::Grep);
    print!("{native}");
    println!("elements: {}\n", native.element_count());

    println!("=== Abstraction-layer grep execution plan (paper Fig. 13) ===");
    let pipeline = beam_pipeline(&broker, Query::Grep, "input", "output");
    let beam = beamline::runners::RillRunner::new().plan(&pipeline)?;
    print!("{beam}");
    println!("elements: {}", beam.element_count());

    println!(
        "\nThe layer-built plan has {}x the elements of the native plan —\n\
         more operators, and every one of them pays a coder round trip.",
        beam.element_count() as f64 / native.element_count() as f64
    );
    Ok(())
}
