//! Quickstart: define one pipeline with the abstraction layer and run it
//! unchanged on three different stream processing engines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use beamline::runners::{ApxRunner, DStreamRunner, RillRunner};
use beamline::{BrokerIO, BytesCoder, Filter, PipelineRunner, Values, WithoutMetadata};
use bytes::Bytes;
use logbus::{Broker, Producer, Record, TopicConfig};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // A broker with an input topic holding a few log lines.
    let broker = Broker::new();
    broker.create_topic("logs", TopicConfig::default())?;
    let mut producer = Producer::new(broker.clone());
    for line in [
        "2026-07-07 10:00:01 INFO service started",
        "2026-07-07 10:00:02 ERROR disk full",
        "2026-07-07 10:00:03 INFO heartbeat",
        "2026-07-07 10:00:04 ERROR connection reset",
        "2026-07-07 10:00:05 INFO heartbeat",
    ] {
        producer.send("logs", Record::from_value(line))?;
    }
    producer.flush()?;

    // One pipeline definition: read -> drop metadata -> values -> filter
    // errors -> write.
    let build_pipeline = |output_topic: &str| {
        let pipeline = beamline::Pipeline::new();
        pipeline
            .apply(BrokerIO::read(broker.clone(), "logs"))
            .apply(WithoutMetadata::new())
            .apply(Values::create(Arc::new(BytesCoder)))
            .apply(Filter::new("ErrorsOnly", |v: &Bytes| {
                v.windows(5).any(|w| w == b"ERROR")
            }))
            .apply(BrokerIO::write(broker.clone(), output_topic));
        pipeline
    };

    // The same program runs on every engine — that is the abstraction
    // layer's value proposition (and the paper quantifies its price).
    let runners: Vec<(&str, Box<dyn PipelineRunner>)> = vec![
        ("rill (Flink analog)", Box::new(RillRunner::new())),
        ("dstream (Spark analog)", Box::new(DStreamRunner::new())),
        ("apx (Apex analog)", Box::new(ApxRunner::new())),
    ];
    for (label, runner) in runners {
        let output_topic = format!("errors-{}", runner.name());
        broker.create_topic(&output_topic, TopicConfig::default())?;
        let result = runner.run(&build_pipeline(&output_topic))?;
        let n = broker.latest_offset(&output_topic, 0)?;
        println!("{label}: {n} error lines in {:?}", result.duration);
        for stored in broker.fetch(&output_topic, 0, 0, n as usize)? {
            println!("  {}", String::from_utf8_lossy(&stored.record.value));
        }
    }
    Ok(())
}
