//! The canonical composite pipeline — word count — written once with the
//! abstraction layer's `Count.perElement` and executed on the runners
//! that support `GroupByKey`. Also demonstrates the capability matrix:
//! the micro-batch runner rejects the pipeline, the paper's reason for
//! benchmarking only stateless queries.
//!
//! ```sh
//! cargo run --example word_count
//! ```

use beamline::aggregates::word_count;
use beamline::runners::{DStreamRunner, DirectRunner, RillRunner};
use beamline::{Create, PipelineRunner};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let lines = vec![
        "to be or not to be".to_string(),
        "that is the question".to_string(),
        "to stream or not to stream".to_string(),
    ];

    let pipeline = beamline::Pipeline::new();
    let counts = word_count(&pipeline.apply(Create::strings(lines.clone())));

    // Reference execution with materialized results.
    let result = DirectRunner::new().run(&pipeline)?;
    let mut rows = result.collect_of(&counts)?;
    rows.sort_by(|a, b| b.value.cmp(&a.value).then(a.key.cmp(&b.key)));
    println!("word counts (direct runner):");
    for kv in &rows {
        println!("  {:>2}  {}", kv.value, kv.key);
    }

    // The same pipeline runs on the Flink-analog engine...
    let pipeline2 = beamline::Pipeline::new();
    let _ = word_count(&pipeline2.apply(Create::strings(lines.clone())));
    let report = RillRunner::new().run(&pipeline2)?;
    println!(
        "\nrill runner executed the identical pipeline in {:?}",
        report.duration
    );

    // ...but not on the micro-batch engine: stateful processing is
    // unsupported there (paper §III-B).
    let pipeline3 = beamline::Pipeline::new();
    let _ = word_count(&pipeline3.apply(Create::strings(lines)));
    match DStreamRunner::new().run(&pipeline3) {
        Err(beamline::Error::UnsupportedTransform { runner, transform }) => {
            println!("\ndstream runner rejected it: `{transform}` unsupported on `{runner}`");
        }
        other => println!("\nunexpected: {other:?}"),
    }
    Ok(())
}
