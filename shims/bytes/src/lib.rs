//! Offline shim for the `bytes` API subset used by this workspace:
//! [`Bytes`], a cheaply-cloneable, sliceable, immutable byte container,
//! and [`BytesMut`], an append-only builder whose frozen prefixes become
//! zero-copy `Bytes` views of one shared allocation.
//!
//! # Storage model
//!
//! Backing storage is either a `&'static [u8]` (zero-cost
//! [`Bytes::from_static`]) or a reference-counted raw buffer taken
//! directly from a `Vec<u8>` without copying ([`Bytes::from`] /
//! [`BytesMut`]); clones and slices share storage and never copy.
//!
//! # Safety invariant
//!
//! All `unsafe` in the workspace's byte path is confined to this shim.
//! A [`Shared`] buffer may be referenced by any number of read-only
//! `Bytes` views plus at most one writer region per disjoint
//! `[off, cap_end)` window owned by a `BytesMut`:
//!
//! * a `Bytes` view covers only bytes that were fully initialized
//!   *before* the view was created, and those bytes are never written
//!   again (freezing advances the writer's base past them);
//! * a `BytesMut` writes only at `off + len ..`, strictly beyond every
//!   frozen view and disjoint from every sibling produced by
//!   [`BytesMut::split_to`].
//!
//! Reads and writes therefore never overlap, so no `&`/`&mut` aliasing
//! or data race can occur even when views live on other threads.
//!
//! # Chunk pool
//!
//! Dropping the last reference to a shared buffer returns its
//! allocation to a small capped free-list instead of the global
//! allocator; [`BytesMut::with_capacity`] takes from the same list.
//! In steady state (all buffers recycled through the pool) the byte
//! path performs zero heap allocations. See [`pool_stats`].

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Smallest buffer capacity worth keeping in the recycle pool.
const POOL_MIN_CAP: usize = 1024;
/// Largest buffer capacity the pool will retain (oversize chunks are
/// freed rather than hoarded).
const POOL_MAX_CAP: usize = 8 << 20;
/// Maximum number of idle chunks retained; beyond this the allocator
/// takes them back.
const POOL_MAX_CHUNKS: usize = 64;

/// Free-list of retired backing buffers, shared across threads: buffers
/// can be dropped on a different thread than the one that filled them
/// (consumer vs. producer), so the pool must be global. It is locked
/// once per *chunk*, never per record.
static CHUNK_POOL: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());
static POOL_REUSED: AtomicUsize = AtomicUsize::new(0);
static POOL_RECLAIMED: AtomicUsize = AtomicUsize::new(0);

/// (buffers handed back out of the pool, buffers returned to the pool)
/// since process start. Test/diagnostic hook for asserting the recycle
/// path is live.
pub fn pool_stats() -> (usize, usize) {
    (
        POOL_REUSED.load(Ordering::Relaxed),
        POOL_RECLAIMED.load(Ordering::Relaxed),
    )
}

fn pool_acquire(cap: usize) -> Vec<u8> {
    if cap >= POOL_MIN_CAP {
        if let Ok(mut pool) = CHUNK_POOL.lock() {
            if let Some(idx) = pool.iter().position(|v| v.capacity() >= cap) {
                let v = pool.swap_remove(idx);
                POOL_REUSED.fetch_add(1, Ordering::Relaxed);
                return v;
            }
        }
    }
    Vec::with_capacity(cap)
}

fn pool_reclaim(v: Vec<u8>) {
    let cap = v.capacity();
    if (POOL_MIN_CAP..=POOL_MAX_CAP).contains(&cap) {
        if let Ok(mut pool) = CHUNK_POOL.lock() {
            if pool.len() < POOL_MAX_CHUNKS {
                POOL_RECLAIMED.fetch_add(1, Ordering::Relaxed);
                let mut v = v;
                v.clear();
                pool.push(v);
            }
        }
    }
}

/// A refcounted heap buffer: the raw parts of a `Vec<u8>` whose
/// allocation is returned to the chunk pool when the last reference
/// (every `Bytes` view and `BytesMut` writer) drops.
struct Shared {
    ptr: *mut u8,
    cap: usize,
}

// SAFETY: `Shared` is an owning handle to a heap allocation; access
// discipline (disjoint read/write regions) is enforced by the
// `Bytes`/`BytesMut` API per the module-level invariant.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Shared {
    fn from_vec(mut v: Vec<u8>) -> Arc<Shared> {
        let ptr = v.as_mut_ptr();
        let cap = v.capacity();
        std::mem::forget(v);
        Arc::new(Shared { ptr, cap })
    }

    /// The canonical zero-capacity buffer, shared so `BytesMut::new()`
    /// never allocates.
    fn empty() -> Arc<Shared> {
        static EMPTY: OnceLock<Arc<Shared>> = OnceLock::new();
        EMPTY.get_or_init(|| Shared::from_vec(Vec::new())).clone()
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`cap` came from a forgotten `Vec<u8>`; length 0
        // is always valid and sidesteps any question of which bytes are
        // initialized. Reconstructing hands the allocation back.
        let v = unsafe { Vec::from_raw_parts(self.ptr, 0, self.cap) };
        pool_reclaim(v);
    }
}

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Storage,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Storage {
    Static(&'static [u8]),
    Shared(Arc<Shared>),
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Storage::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Storage::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a new shared buffer (the one constructor that
    /// copies, for callers that only have a borrowed slice).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether this view is backed by `&'static` storage (no refcount).
    pub fn is_static(&self) -> bool {
        matches!(self.data, Storage::Static(_))
    }

    /// Returns a sub-buffer sharing this buffer's storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end, "slice range inverted: {start} > {end}");
        assert!(
            end <= self.len(),
            "slice end {end} out of bounds (len {})",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Returns a view of `subset` sharing this buffer's storage, where
    /// `subset` must be a sub-slice of `self` (same allocation). The
    /// zero-copy escape hatch for decode paths that walk a `&[u8]`
    /// cursor over a `Bytes` and want to keep a piece without copying.
    ///
    /// # Panics
    ///
    /// Panics when `subset` does not lie inside `self`'s bounds.
    pub fn slice_ref(&self, subset: &[u8]) -> Self {
        if subset.is_empty() {
            return Bytes::new();
        }
        let full = self.as_slice();
        let full_start = full.as_ptr() as usize;
        let sub_start = subset.as_ptr() as usize;
        assert!(
            sub_start >= full_start && sub_start + subset.len() <= full_start + full.len(),
            "slice_ref: subset is not contained in this Bytes"
        );
        let off = sub_start - full_start;
        self.slice(off..off + subset.len())
    }

    /// Copies the contents into a new `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Storage::Static(s) => &s[self.start..self.end],
            // SAFETY: per the module invariant, `[start, end)` was fully
            // initialized before this view existed and is never written
            // while any view of it is alive; the `Arc` keeps the
            // allocation alive for `&self`'s lifetime.
            Storage::Shared(a) => unsafe {
                std::slice::from_raw_parts(a.ptr.add(self.start), self.end - self.start)
            },
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of the `Vec`'s allocation without copying.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Storage::Shared(Shared::from_vec(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    /// Takes ownership of the `String`'s allocation without copying.
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// An append-only byte builder over a pooled shared buffer. Appended
/// bytes are split off as zero-copy [`Bytes`] views ([`BytesMut::split_to`]
/// plus [`BytesMut::freeze`], or the fused [`BytesMut::pack`]); when
/// capacity runs out the builder rolls to a fresh pooled chunk while
/// earlier frozen views keep the old one alive.
pub struct BytesMut {
    shared: Arc<Shared>,
    /// Write base: every byte below `off` is frozen (visible to `Bytes`
    /// views) or belongs to a sibling from `split_to`; this builder
    /// never writes below it.
    off: usize,
    /// Initialized-but-unfrozen bytes at `off..off + len`.
    len: usize,
    /// Exclusive upper bound of this builder's writable window
    /// (`shared.cap` unless this half was produced by `split_to`).
    cap_end: usize,
}

impl BytesMut {
    /// Creates an empty builder without allocating.
    pub fn new() -> Self {
        BytesMut {
            shared: Shared::empty(),
            off: 0,
            len: 0,
            cap_end: 0,
        }
    }

    /// Creates a builder with at least `cap` bytes of capacity, reusing
    /// a pooled chunk when one is available.
    pub fn with_capacity(cap: usize) -> Self {
        let shared = Shared::from_vec(pool_acquire(cap));
        let cap_end = shared.cap;
        BytesMut {
            shared,
            off: 0,
            len: 0,
            cap_end,
        }
    }

    /// Number of initialized, unfrozen bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no pending bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writable capacity remaining (including pending bytes).
    pub fn capacity(&self) -> usize {
        self.cap_end - self.off
    }

    /// Ensures room for `additional` more bytes, rolling to a fresh
    /// pooled chunk (and carrying pending bytes over) when the current
    /// window is exhausted. Frozen views keep the old chunk alive; once
    /// they drop it returns to the pool.
    pub fn reserve(&mut self, additional: usize) {
        if self.capacity() - self.len >= additional {
            return;
        }
        let need = self.len + additional;
        let new_cap = need.next_power_of_two().max(POOL_MIN_CAP);
        let fresh = Shared::from_vec(pool_acquire(new_cap));
        if self.len > 0 {
            // SAFETY: source region `[off, off+len)` of the old buffer is
            // initialized and owned by this builder; the fresh buffer has
            // `new_cap >= len` capacity and no other referent. The two
            // allocations are distinct, so the ranges cannot overlap.
            unsafe {
                std::ptr::copy_nonoverlapping(self.shared.ptr.add(self.off), fresh.ptr, self.len);
            }
        }
        self.cap_end = fresh.cap;
        self.shared = fresh;
        self.off = 0;
    }

    /// Appends `src` to the pending region.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.reserve(src.len());
        // SAFETY: `reserve` guaranteed `off + len + src.len() <= cap_end
        // <= cap`; per the module invariant no reader or sibling writer
        // touches `[off + len, cap_end)`, and `src` cannot alias the
        // destination (no `&` to the unwritten region can exist).
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.shared.ptr.add(self.off + self.len),
                src.len(),
            );
        }
        self.len += src.len();
    }

    /// `bytes`-style alias for [`BytesMut::extend_from_slice`].
    pub fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    /// Splits off the first `at` pending bytes into their own builder
    /// (sharing storage); `self` keeps the remainder. The two halves
    /// own disjoint write windows.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len,
            "split_to at {at} out of bounds (len {})",
            self.len
        );
        let front = BytesMut {
            shared: self.shared.clone(),
            off: self.off,
            len: at,
            cap_end: self.off + at,
        };
        self.off += at;
        self.len -= at;
        front
    }

    /// Splits off *all* pending bytes, leaving `self` empty (but still
    /// writable in place).
    pub fn split(&mut self) -> BytesMut {
        let len = self.len;
        self.split_to(len)
    }

    /// Freezes the pending bytes into an immutable zero-copy view.
    pub fn freeze(self) -> Bytes {
        Bytes {
            start: self.off,
            end: self.off + self.len,
            data: Storage::Shared(self.shared),
        }
    }

    /// Copies `data` in and returns it as a frozen zero-copy view in
    /// one step: the packer primitive used by segment arenas. Equivalent
    /// to `extend_from_slice(data); split_to(data.len()).freeze()`.
    pub fn pack(&mut self, data: &[u8]) -> Bytes {
        self.extend_from_slice(data);
        let start = self.off;
        self.off += data.len();
        self.len -= data.len();
        Bytes {
            start,
            end: start + data.len(),
            data: Storage::Shared(self.shared.clone()),
        }
    }

    /// Discards pending bytes (frozen views are unaffected).
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `[off, off+len)` is initialized and no other writer
        // may touch it (`extend_from_slice` writes at `off + len..`,
        // siblings are disjoint), so a shared borrow is sound.
        unsafe { std::slice::from_raw_parts(self.shared.ptr.add(self.off), self.len) }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut(len={}, cap={})", self.len, self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::from("abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from(String::from("x")).len(), 1);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![7u8; 32];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(
            b.as_slice().as_ptr(),
            ptr,
            "storage must be taken, not copied"
        );
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(b"hello world".to_vec());
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        assert_eq!(s.slice(..3), Bytes::from_static(b"wor"));
        assert_eq!(b.slice(..5).to_vec(), b"hello");
    }

    #[test]
    fn empty_and_full_range_slices() {
        let b = Bytes::from(b"abcdef".to_vec());
        assert!(b.slice(3..3).is_empty());
        assert_eq!(b.slice(..), b);
        assert_eq!(b.slice(0..6), b);
        let empty = Bytes::new();
        assert_eq!(empty.slice(..), empty);
    }

    #[test]
    fn nested_slices_stay_anchored() {
        let b = Bytes::from(b"0123456789".to_vec());
        let mid = b.slice(2..8); // "234567"
        let inner = mid.slice(1..4); // "345"
        assert_eq!(&inner[..], b"345");
        assert_eq!(inner.slice(2..), Bytes::from_static(b"5"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::from_static(b"ab").slice(..3);
    }

    #[test]
    fn slice_ref_shares_storage() {
        let b = Bytes::from(b"key=value".to_vec());
        let cursor: &[u8] = &b[4..];
        let v = b.slice_ref(cursor);
        assert_eq!(&v[..], b"value");
        assert_eq!(v.as_slice().as_ptr(), cursor.as_ptr(), "no copy");
        assert!(b.slice_ref(&[]).is_empty());
        assert_eq!(b.slice_ref(&b[..]), b);
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn slice_ref_foreign_slice_panics() {
        let b = Bytes::from(b"abc".to_vec());
        let other = [1u8, 2, 3];
        let _ = b.slice_ref(&other);
    }

    #[test]
    fn refcount_keeps_storage_alive_after_source_drops() {
        let slice = {
            let b = Bytes::from(b"long lived backing".to_vec());
            b.slice(5..10)
        };
        assert_eq!(&slice[..], b"lived");
    }

    #[test]
    fn bytesmut_pack_is_zero_copy_view() {
        let mut buf = BytesMut::with_capacity(64);
        let a = buf.pack(b"alpha");
        let b = buf.pack(b"beta");
        assert_eq!(&a[..], b"alpha");
        assert_eq!(&b[..], b"beta");
        // Both views are adjacent slices of the same allocation.
        let a_end = a.as_slice().as_ptr() as usize + a.len();
        assert_eq!(a_end, b.as_slice().as_ptr() as usize);
    }

    #[test]
    fn bytesmut_split_freeze_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.extend_from_slice(b"headerbody");
        let header = buf.split_to(6).freeze();
        assert_eq!(&header[..], b"header");
        assert_eq!(&buf[..], b"body");
        let body = buf.split().freeze();
        assert_eq!(&body[..], b"body");
    }

    #[test]
    fn bytesmut_growth_preserves_frozen_views() {
        let mut buf = BytesMut::with_capacity(8);
        let first = buf.pack(b"12345678"); // fills the chunk
        let second = buf.pack(b"abcdefgh"); // forces a roll to a new chunk
        assert_eq!(&first[..], b"12345678", "frozen view survives the roll");
        assert_eq!(&second[..], b"abcdefgh");
    }

    #[test]
    fn bytesmut_growth_carries_pending_bytes() {
        let mut buf = BytesMut::with_capacity(4);
        buf.extend_from_slice(b"abc");
        buf.extend_from_slice(b"defghij"); // exceeds capacity mid-build
        assert_eq!(&buf[..], b"abcdefghij");
        assert_eq!(&buf.freeze()[..], b"abcdefghij");
    }

    #[test]
    fn chunk_pool_recycles_buffers() {
        let (reused_before, reclaimed_before) = pool_stats();
        for _ in 0..4 {
            let mut buf = BytesMut::with_capacity(POOL_MIN_CAP);
            let view = buf.pack(&[9u8; 128]);
            drop(buf);
            drop(view); // last ref: chunk goes back to the pool
        }
        let (reused, reclaimed) = pool_stats();
        assert!(
            reclaimed > reclaimed_before,
            "dropping the last view must reclaim the chunk"
        );
        assert!(reused > reused_before, "later builders must reuse chunks");
    }

    #[test]
    fn deref_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Bytes::from_static(b"k"));
        assert!(set.contains(&Bytes::from(b"k".to_vec())));
        assert_eq!(Bytes::from_static(b"abc").iter().count(), 3);
    }

    #[test]
    fn cross_thread_views() {
        let mut buf = BytesMut::with_capacity(1024);
        let view = buf.pack(b"shared across threads");
        let handle = std::thread::spawn(move || view.to_vec());
        buf.extend_from_slice(b"writer keeps writing meanwhile");
        assert_eq!(handle.join().unwrap(), b"shared across threads");
    }
}
