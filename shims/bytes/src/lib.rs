//! Offline shim for the `bytes::Bytes` API subset used by this
//! workspace: a cheaply-cloneable, sliceable, immutable byte container.
//!
//! Backing storage is either a `&'static [u8]` (zero-cost
//! [`Bytes::from_static`]) or a reference-counted `Arc<[u8]>`; clones and
//! slices share storage and never copy.

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Storage,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Storage {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Storage::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Storage::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-buffer sharing this buffer's storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end, "slice range inverted: {start} > {end}");
        assert!(
            end <= self.len(),
            "slice end {end} out of bounds (len {})",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the contents into a new `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        let full: &[u8] = match &self.data {
            Storage::Static(s) => s,
            Storage::Shared(a) => a,
        };
        &full[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Storage::Shared(Arc::from(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::from("abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from(String::from("x")).len(), 1);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(b"hello world".to_vec());
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        assert_eq!(s.slice(..3), Bytes::from_static(b"wor"));
        assert_eq!(b.slice(..5).to_vec(), b"hello");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::from_static(b"ab").slice(..3);
    }

    #[test]
    fn deref_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Bytes::from_static(b"k"));
        assert!(set.contains(&Bytes::from(b"k".to_vec())));
        assert_eq!(Bytes::from_static(b"abc").iter().count(), 3);
    }
}
