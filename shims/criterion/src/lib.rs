//! Offline shim for the `criterion` API subset used by this workspace.
//!
//! A small wall-clock benchmarking harness: each `bench_function` warms
//! up, sizes iteration counts to the configured measurement time, takes
//! `sample_size` samples, and reports median/mean time per iteration
//! plus throughput. Results print to stdout in a stable, greppable
//! format:
//!
//! ```text
//! group/label  median 1.234 µs/iter  mean 1.301 µs/iter  thrpt 810.4 Kelem/s
//! ```
//!
//! Positional command-line arguments act as substring filters on the
//! `group/label` id, like the real crate's filter argument.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement back-ends (only wall time is provided).
pub mod measurement {
    /// A way of measuring benchmark iterations.
    pub trait Measurement {}

    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;

    impl Measurement for WallTime {}
}

/// Declared throughput of one benchmark iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args (skipping flags and the binary name) filter
        // benchmarks by id substring, as with the real crate.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-') && a != "bench")
            .collect();
        Criterion { filters }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_secs(1),
            measurement_time: Duration::from_secs(3),
            throughput: None,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M: measurement::Measurement> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M: measurement::Measurement> BenchmarkGroup<'_, M> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full_id = if self.name.is_empty() {
            id.as_ref().to_string()
        } else {
            format!("{}/{}", self.name, id.as_ref())
        };
        if !self.criterion.matches(&full_id) {
            return self;
        }

        // Warm-up: repeat single iterations until the warm-up budget is
        // spent, collecting a per-iteration estimate as we go.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_up_start = Instant::now();
        let mut per_iter_estimate = Duration::from_nanos(1);
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            if !bencher.elapsed.is_zero() {
                per_iter_estimate = bencher.elapsed;
            }
        }

        let per_sample_budget = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample_budget.as_nanos() / per_iter_estimate.as_nanos().max(1))
            .clamp(1, u128::from(u64::MAX)) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  thrpt {}elem/s", si(n as f64 / median)),
            Some(Throughput::Bytes(n)) => format!("  thrpt {}B/s", si(n as f64 / median)),
            None => String::new(),
        };
        println!(
            "{full_id}  median {}s/iter  mean {}s/iter{rate}",
            si(median),
            si(mean)
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Formats a value with an SI prefix: `1234.5` → `"1.234 K"`.
fn si(value: f64) -> String {
    let (scaled, prefix) = if value >= 1e9 {
        (value / 1e9, "G")
    } else if value >= 1e6 {
        (value / 1e6, "M")
    } else if value >= 1e3 {
        (value / 1e3, "K")
    } else if value >= 1.0 {
        (value, "")
    } else if value >= 1e-3 {
        (value * 1e3, "m")
    } else if value >= 1e-6 {
        (value * 1e6, "µ")
    } else {
        (value * 1e9, "n")
    };
    format!("{scaled:.3} {prefix}")
}

/// Times the benchmarked routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a runnable group, like the real
/// crate's macro. Configuration arguments are not supported.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { filters: vec![] };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15))
            .throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function("work", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            });
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = Criterion {
            filters: vec!["other".into()],
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).warm_up_time(Duration::from_millis(1));
        let mut runs = 0u64;
        group.bench_function("work", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert_eq!(runs, 0, "filtered-out benchmark must not run");
    }

    #[test]
    fn si_formatting() {
        assert_eq!(si(1_500.0), "1.500 K");
        assert_eq!(si(0.002), "2.000 m");
        assert_eq!(si(2.0e-6), "2.000 µ");
    }
}
