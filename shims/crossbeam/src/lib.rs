//! Offline shim for the `crossbeam::channel` API subset used by this
//! workspace: multi-producer multi-consumer channels with optional
//! capacity bounds, cloneable receivers, and disconnect semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel. Cloneable: each message is
    /// delivered to exactly one receiver.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a channel with a capacity bound; sends block when full.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(capacity))
    }

    /// Creates a channel without a capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        /// Returns the value if every receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.chan.not_full.wait(state).expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking until one is available.
        /// Errors when the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Receives the next message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().expect("channel lock");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.chan.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        assert!(handle.join().unwrap().is_ok());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cloned_receivers_compete() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        let mut got = vec![rx1.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec!["a", "b"]);
        assert!(rx1.recv().is_err());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = bounded(16);
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0u64;
        while let Ok(v) = rx.recv() {
            sum += v;
        }
        producer.join().unwrap();
        assert_eq!(sum, 10_000 * 9_999 / 2);
    }
}
