//! `check-sync`: dynamic lock-order and race checking built into the shim.
//!
//! With the `check-sync` cargo feature enabled, every `Mutex`/`RwLock`
//! acquisition that goes through this shim is recorded into a global
//! **lock-order graph** (an edge `A → B` means some thread acquired `B`
//! while holding `A`). Edges are checked eagerly: the first edge that
//! closes a cycle — a potential deadlock, even if this particular
//! schedule did not hang — is recorded as a violation together with the
//! first-acquisition site of every lock on the cycle. The checker also
//! keeps **contention** counts (acquisitions that had to block),
//! **long-hold** maxima per lock, and a **monotonic-write witness** used
//! by the broker's append path to detect lost-update/LWW anomalies
//! (offsets must be strictly increasing, `LogAppendTime` non-decreasing).
//!
//! Everything in this module compiles away when the feature is off: the
//! lock types carry no extra fields and the lock/unlock paths are
//! exactly the plain `std::sync` wrappers (see `lib.rs`).
//!
//! The checker's own state deliberately uses `std::sync::Mutex` — it
//! must not recurse into the instrumented shim. The workspace lint that
//! forbids `std::sync` locks outside the shims (`cargo run -p sanity`,
//! lint `std-sync-lock`) exempts this crate for that reason.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};
use std::time::Instant;

/// Next lock id; ids start at 1 so 0 can mean "unassigned".
static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

/// Long-hold threshold in microseconds (default 100ms; see
/// [`set_long_hold_threshold_micros`]).
static LONG_HOLD_MICROS: AtomicU64 = AtomicU64::new(100_000);

/// One checker finding. `kind` is stable (`lock-cycle` or
/// `non-monotonic-write`); `detail` is the human-readable evidence.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: &'static str,
    pub detail: String,
}

/// A lock that held longer than the threshold at least once.
#[derive(Debug, Clone)]
pub struct LongHold {
    /// First-acquisition site of the lock.
    pub site: String,
    /// Longest observed hold, in microseconds.
    pub max_micros: u64,
}

/// Contention summary for one lock.
#[derive(Debug, Clone)]
pub struct ContentionStat {
    /// First-acquisition site of the lock.
    pub site: String,
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
}

#[derive(Default)]
struct CheckState {
    /// First-acquisition site per lock id.
    labels: HashMap<usize, &'static Location<'static>>,
    /// Lock-order adjacency: key held while value acquired.
    edges: HashMap<usize, HashSet<usize>>,
    /// Dedup for edge insertion (and thus cycle re-checks).
    edge_set: HashSet<(usize, usize)>,
    /// Canonicalized cycles already reported.
    reported: HashSet<Vec<usize>>,
    violations: Vec<Violation>,
    acquisitions: HashMap<usize, u64>,
    contended: HashMap<usize, u64>,
    hold_max: HashMap<usize, u64>,
    /// Monotonic witness: highest value seen per (domain, key).
    witness: HashMap<(&'static str, u64), u64>,
}

fn state() -> &'static StdMutex<CheckState> {
    static STATE: OnceLock<StdMutex<CheckState>> = OnceLock::new();
    STATE.get_or_init(|| StdMutex::new(CheckState::default()))
}

fn with_state<R>(f: impl FnOnce(&mut CheckState) -> R) -> R {
    let mut guard = state()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(&mut guard)
}

thread_local! {
    /// Lock ids currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Per-lock instrumentation carried by `Mutex`/`RwLock` when the
/// feature is on. `const`-constructible so `Mutex::new` stays `const`.
#[derive(Debug, Default)]
pub(crate) struct LockMeta {
    id: AtomicUsize,
}

impl LockMeta {
    pub(crate) const fn new() -> Self {
        LockMeta {
            id: AtomicUsize::new(0),
        }
    }

    /// This lock's id, assigned on first acquisition; `site` (the
    /// caller's source location) becomes the lock's label.
    pub(crate) fn resolve(&self, site: &'static Location<'static>) -> usize {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                with_state(|st| st.labels.insert(fresh, site));
                fresh
            }
            Err(existing) => existing,
        }
    }
}

/// Proof of one held acquisition; returned by [`on_acquired`], consumed
/// by [`on_released`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct HoldToken {
    id: usize,
    acquired: Instant,
}

impl HoldToken {
    pub(crate) fn id(&self) -> usize {
        self.id
    }
}

/// Records one blocked (contended) acquisition attempt.
pub(crate) fn note_contended(id: usize) {
    with_state(|st| *st.contended.entry(id).or_insert(0) += 1);
}

/// Records a completed acquisition: adds lock-order edges from every
/// lock this thread already holds, checking each new edge for cycles.
pub(crate) fn on_acquired(id: usize) -> HoldToken {
    HELD.with(|h| {
        let held = h.borrow();
        if !held.is_empty() {
            with_state(|st| {
                for &prev in held.iter() {
                    if prev != id && st.edge_set.insert((prev, id)) {
                        st.edges.entry(prev).or_default().insert(id);
                        record_cycle_if_any(st, prev, id);
                    }
                }
            });
        }
    });
    HELD.with(|h| h.borrow_mut().push(id));
    with_state(|st| *st.acquisitions.entry(id).or_insert(0) += 1);
    HoldToken {
        id,
        acquired: Instant::now(),
    }
}

/// Records a release: pops the hold stack and updates hold-time maxima.
pub(crate) fn on_released(token: HoldToken) {
    // `try_with`: guards may drop during thread teardown.
    let _ = HELD.try_with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&id| id == token.id) {
            held.remove(pos);
        }
    });
    let micros = token.acquired.elapsed().as_micros() as u64;
    with_state(|st| {
        let max = st.hold_max.entry(token.id).or_insert(0);
        *max = (*max).max(micros);
    });
}

/// After inserting edge `from → to`, reports a violation if `to` can
/// already reach `from` (the new edge closes a cycle).
fn record_cycle_if_any(st: &mut CheckState, from: usize, to: usize) {
    // DFS from `to` looking for `from`, tracking the path.
    let mut path = vec![to];
    let mut visited = HashSet::new();
    if !dfs(&st.edges, to, from, &mut visited, &mut path) {
        return;
    }
    // path = to … from; the full cycle is from → to … from.
    let mut cycle: Vec<usize> = Vec::with_capacity(path.len() + 1);
    cycle.push(from);
    cycle.extend(&path);
    // Canonicalize (rotate so the smallest id leads) for dedup.
    let mut canonical = cycle[..cycle.len() - 1].to_vec();
    if let Some(min_pos) = canonical
        .iter()
        .enumerate()
        .min_by_key(|(_, &id)| id)
        .map(|(i, _)| i)
    {
        canonical.rotate_left(min_pos);
    }
    if !st.reported.insert(canonical) {
        return;
    }
    let describe = |id: usize| {
        st.labels
            .get(&id)
            .map_or_else(|| format!("lock#{id}"), |l| format!("{l}"))
    };
    let chain: Vec<String> = cycle.iter().map(|&id| describe(id)).collect();
    st.violations.push(Violation {
        kind: "lock-cycle",
        detail: format!(
            "lock-order cycle (potential deadlock): {}",
            chain.join(" -> ")
        ),
    });
}

fn dfs(
    edges: &HashMap<usize, HashSet<usize>>,
    at: usize,
    target: usize,
    visited: &mut HashSet<usize>,
    path: &mut Vec<usize>,
) -> bool {
    if at == target {
        return true;
    }
    if !visited.insert(at) {
        return false;
    }
    if let Some(next) = edges.get(&at) {
        for &n in next {
            path.push(n);
            if dfs(edges, n, target, visited, path) {
                return true;
            }
            path.pop();
        }
    }
    false
}

/// Monotonic-write witness for last-write-wins style invariants.
///
/// Records `value` for `(domain, key)` and reports a
/// `non-monotonic-write` violation when it regresses: with
/// `strict = true` the value must strictly increase (e.g. log offsets),
/// otherwise it must not decrease (e.g. `LogAppendTime` stamps).
pub fn witness_monotonic(domain: &'static str, key: u64, value: u64, strict: bool) {
    with_state(|st| {
        match st.witness.get(&(domain, key)) {
            Some(&prev) if value < prev || (strict && value == prev) => {
                st.violations.push(Violation {
                    kind: "non-monotonic-write",
                    detail: format!(
                        "{domain}[{key}]: wrote {value} after {prev} \
                         ({} expected)",
                        if strict {
                            "strictly increasing"
                        } else {
                            "non-decreasing"
                        }
                    ),
                });
            }
            _ => {
                st.witness.insert((domain, key), value);
            }
        };
    });
}

/// Sets the long-hold reporting threshold (microseconds).
pub fn set_long_hold_threshold_micros(micros: u64) {
    LONG_HOLD_MICROS.store(micros, Ordering::Relaxed);
}

/// All violations recorded so far (cycles and witness regressions).
pub fn violations() -> Vec<Violation> {
    with_state(|st| st.violations.clone())
}

/// Drains and returns the recorded violations.
pub fn take_violations() -> Vec<Violation> {
    with_state(|st| std::mem::take(&mut st.violations))
}

/// Locks whose longest hold exceeded the threshold, worst first.
pub fn long_holds() -> Vec<LongHold> {
    let threshold = LONG_HOLD_MICROS.load(Ordering::Relaxed);
    let mut holds = with_state(|st| {
        st.hold_max
            .iter()
            .filter(|&(_, &max)| max > threshold)
            .map(|(&id, &max)| LongHold {
                site: st
                    .labels
                    .get(&id)
                    .map_or_else(|| format!("lock#{id}"), |l| format!("{l}")),
                max_micros: max,
            })
            .collect::<Vec<_>>()
    });
    holds.sort_by_key(|h| std::cmp::Reverse(h.max_micros));
    holds
}

/// Per-lock contention counters, most contended first.
pub fn contention() -> Vec<ContentionStat> {
    let mut stats = with_state(|st| {
        st.contended
            .iter()
            .map(|(&id, &contended)| ContentionStat {
                site: st
                    .labels
                    .get(&id)
                    .map_or_else(|| format!("lock#{id}"), |l| format!("{l}")),
                acquisitions: st.acquisitions.get(&id).copied().unwrap_or(0),
                contended,
            })
            .collect::<Vec<_>>()
    });
    stats.sort_by_key(|s| std::cmp::Reverse(s.contended));
    stats
}

/// Human-readable summary: violations, hot locks, long holds.
pub fn report() -> String {
    let mut out = String::new();
    let violations = violations();
    out.push_str(&format!("check-sync: {} violation(s)\n", violations.len()));
    for v in &violations {
        out.push_str(&format!("  [{}] {}\n", v.kind, v.detail));
    }
    let contention = contention();
    if !contention.is_empty() {
        out.push_str("hot locks (contended acquisitions):\n");
        for c in contention.iter().take(8) {
            out.push_str(&format!(
                "  {}: {} contended / {} total\n",
                c.site, c.contended, c.acquisitions
            ));
        }
    }
    let holds = long_holds();
    if !holds.is_empty() {
        out.push_str("long holds (over threshold):\n");
        for h in holds.iter().take(8) {
            out.push_str(&format!("  {}: {}us max\n", h.site, h.max_micros));
        }
    }
    out
}

/// Panics with the full report when any violation was recorded. Suites
/// run under `check-sync` call this as their final (`zzz`-named) test.
pub fn assert_clean(context: &str) {
    let found = violations();
    assert!(
        found.is_empty(),
        "check-sync found {} violation(s) in {context}:\n{}",
        found.len(),
        report()
    );
}

/// Clears all recorded state (unit tests only; lock ids remain unique).
pub fn reset() {
    with_state(|st| *st = CheckState::default());
}
