//! Offline shim for the `parking_lot` API subset used by this workspace.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching
//! `parking_lot` semantics: a panic while holding a lock does not poison
//! it for later holders.
//!
//! With the `check-sync` cargo feature the shim becomes the workspace's
//! dynamic lock-order and race checker (see [`sync_check`]): every
//! acquisition is recorded into a global lock-order graph with eager
//! cycle detection, contention and hold-time accounting, and a
//! monotonic-write witness for broker append invariants. With the
//! feature off (the default) none of that code exists — the lock paths
//! compile to the plain `std::sync` wrappers below.

#[cfg(feature = "check-sync")]
mod check;

/// Public checker API (`check-sync` builds only).
#[cfg(feature = "check-sync")]
pub mod sync_check {
    pub use crate::check::{
        assert_clean, contention, long_holds, report, reset, set_long_hold_threshold_micros,
        take_violations, violations, witness_monotonic, ContentionStat, LongHold, Violation,
    };
}

use std::sync;

#[cfg(not(feature = "check-sync"))]
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "check-sync")]
    meta: check::LockMeta,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "check-sync")]
            meta: check::LockMeta::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "check-sync")]
        {
            let id = self.meta.resolve(std::panic::Location::caller());
            let inner = match self.inner.try_lock() {
                Ok(guard) => guard,
                Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                Err(sync::TryLockError::WouldBlock) => {
                    check::note_contended(id);
                    self.inner
                        .lock()
                        .unwrap_or_else(sync::PoisonError::into_inner)
                }
            };
            MutexGuard {
                token: check::on_acquired(id),
                inner: Some(inner),
            }
        }
        #[cfg(not(feature = "check-sync"))]
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "check-sync")]
        {
            let id = self.meta.resolve(std::panic::Location::caller());
            let inner = match self.inner.try_lock() {
                Ok(guard) => guard,
                Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                Err(sync::TryLockError::WouldBlock) => return None,
            };
            Some(MutexGuard {
                token: check::on_acquired(id),
                inner: Some(inner),
            })
        }
        #[cfg(not(feature = "check-sync"))]
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "check-sync")]
    meta: check::LockMeta,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "check-sync")]
            meta: check::LockMeta::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[track_caller]
    pub fn read(&self) -> ReadGuard<'_, T> {
        #[cfg(feature = "check-sync")]
        {
            let id = self.meta.resolve(std::panic::Location::caller());
            let inner = match self.inner.try_read() {
                Ok(guard) => guard,
                Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                Err(sync::TryLockError::WouldBlock) => {
                    check::note_contended(id);
                    self.inner
                        .read()
                        .unwrap_or_else(sync::PoisonError::into_inner)
                }
            };
            ReadGuard {
                token: check::on_acquired(id),
                inner: Some(inner),
            }
        }
        #[cfg(not(feature = "check-sync"))]
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire exclusive write access without blocking.
    #[track_caller]
    pub fn try_write(&self) -> Option<WriteGuard<'_, T>> {
        #[cfg(feature = "check-sync")]
        {
            let id = self.meta.resolve(std::panic::Location::caller());
            let inner = match self.inner.try_write() {
                Ok(guard) => guard,
                Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                Err(sync::TryLockError::WouldBlock) => return None,
            };
            Some(WriteGuard {
                token: check::on_acquired(id),
                inner: Some(inner),
            })
        }
        #[cfg(not(feature = "check-sync"))]
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> WriteGuard<'_, T> {
        #[cfg(feature = "check-sync")]
        {
            let id = self.meta.resolve(std::panic::Location::caller());
            let inner = match self.inner.try_write() {
                Ok(guard) => guard,
                Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                Err(sync::TryLockError::WouldBlock) => {
                    check::note_contended(id);
                    self.inner
                        .write()
                        .unwrap_or_else(sync::PoisonError::into_inner)
                }
            };
            WriteGuard {
                token: check::on_acquired(id),
                inner: Some(inner),
            }
        }
        #[cfg(not(feature = "check-sync"))]
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

// Guard types: plain `std::sync` guards normally, instrumented wrappers
// under `check-sync`.
#[cfg(not(feature = "check-sync"))]
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;
#[cfg(not(feature = "check-sync"))]
pub type ReadGuard<'a, T> = RwLockReadGuard<'a, T>;
#[cfg(not(feature = "check-sync"))]
pub type WriteGuard<'a, T> = RwLockWriteGuard<'a, T>;

#[cfg(feature = "check-sync")]
macro_rules! instrumented_guard {
    ($name:ident, $std:ident $(, $mutability:ident)?) => {
        /// Instrumented guard: releases its hold record on drop.
        pub struct $name<'a, T: ?Sized> {
            token: check::HoldToken,
            /// `Some` until dropped or dissolved for a condvar wait.
            inner: Option<sync::$std<'a, T>>,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.inner.as_ref().expect("guard accessed after dissolve")
            }
        }

        $(impl<T: ?Sized> std::ops::$mutability for $name<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                self.inner.as_mut().expect("guard accessed after dissolve")
            }
        })?

        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                if self.inner.is_some() {
                    check::on_released(self.token);
                }
            }
        }
    };
}

#[cfg(feature = "check-sync")]
instrumented_guard!(MutexGuard, MutexGuard, DerefMut);
#[cfg(feature = "check-sync")]
instrumented_guard!(ReadGuard, RwLockReadGuard);
#[cfg(feature = "check-sync")]
instrumented_guard!(WriteGuard, RwLockWriteGuard, DerefMut);

/// A condition variable paired with [`Mutex`].
///
/// The wait API is by-value (std style) rather than `parking_lot`'s
/// in-place `&mut guard`, because the plain build's guards *are*
/// `std::sync` guards; `wait_timeout` returns `(guard, timed_out)`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Releases `guard`, blocks until notified, reacquires, and returns
    /// the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(feature = "check-sync")]
        {
            let (token, inner) = dissolve(guard);
            check::on_released(token);
            let inner = self
                .0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner);
            MutexGuard {
                token: check::on_acquired(token.id()),
                inner: Some(inner),
            }
        }
        #[cfg(not(feature = "check-sync"))]
        self.0
            .wait(guard)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Like [`Condvar::wait`] with a timeout; the boolean is true when
    /// the wait timed out rather than being notified.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        #[cfg(feature = "check-sync")]
        {
            let (token, inner) = dissolve(guard);
            check::on_released(token);
            let (inner, result) = self
                .0
                .wait_timeout(inner, timeout)
                .unwrap_or_else(sync::PoisonError::into_inner);
            (
                MutexGuard {
                    token: check::on_acquired(token.id()),
                    inner: Some(inner),
                },
                result.timed_out(),
            )
        }
        #[cfg(not(feature = "check-sync"))]
        {
            let (guard, result) = self
                .0
                .wait_timeout(guard, timeout)
                .unwrap_or_else(sync::PoisonError::into_inner);
            (guard, result.timed_out())
        }
    }
}

/// Splits an instrumented guard into its parts without running its
/// release bookkeeping (the condvar wait records that itself).
#[cfg(feature = "check-sync")]
fn dissolve<T: ?Sized>(
    mut guard: MutexGuard<'_, T>,
) -> (check::HoldToken, sync::MutexGuard<'_, T>) {
    let token = guard.token;
    let inner = guard.inner.take().expect("guard dissolved twice");
    (token, inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn try_lock_reports_busy() {
        let m = Mutex::new(5);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.try_lock().map(|g| *g), Some(5));
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = m.lock();
        let (_guard, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_millis(1));
        assert!(timed_out);
    }

    #[test]
    fn condvar_notifies_waiter() {
        let shared = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let shared2 = shared.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*shared2;
            let mut guard = lock.lock();
            while !*guard {
                let (next, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_secs(5));
                guard = next;
                if timed_out {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (lock, cv) = &*shared;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
