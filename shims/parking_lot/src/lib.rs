//! Offline shim for the `parking_lot` API subset used by this workspace.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching
//! `parking_lot` semantics: a panic while holding a lock does not poison
//! it for later holders.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
