//! Tests for the `check-sync` lock-order and race checker.
//!
//! Run with `cargo test -p parking_lot --features check-sync`. The
//! checker's state is process-global, so these tests serialize on a
//! plain `std::sync` mutex (invisible to the checker by design) and
//! reset the recorded state at each test's start.

#![cfg(feature = "check-sync")]

use parking_lot::{sync_check, Condvar, Mutex, RwLock};

/// Serializes tests and clears checker state; holds until test end.
fn begin() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sync_check::reset();
    guard
}

/// An A→B / B→A acquisition order must be reported as a cycle, even
/// though this single-threaded schedule never deadlocks.
#[test]
fn inverted_lock_order_reports_cycle() {
    let _serial = begin();
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    {
        let _ga = a.lock();
        let _gb = b.lock(); // edge A -> B
    }
    {
        let _gb = b.lock();
        let _ga = a.lock(); // edge B -> A: closes the cycle
    }
    let found = sync_check::take_violations();
    assert!(
        found
            .iter()
            .any(|v| v.kind == "lock-cycle" && v.detail.contains("sync_check.rs")),
        "expected a lock-cycle violation naming this file, got: {found:?}"
    );
}

/// Consistent A→B ordering across threads is clean: the graph gains one
/// edge and no cycle.
#[test]
fn consistent_order_is_clean() {
    let _serial = begin();
    let a = std::sync::Arc::new(Mutex::new(0u32));
    let b = std::sync::Arc::new(Mutex::new(0u32));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let (a, b) = (a.clone(), b.clone());
        handles.push(std::thread::spawn(move || {
            for _ in 0..100 {
                let mut ga = a.lock();
                let mut gb = b.lock();
                *ga += 1;
                *gb += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*a.lock(), 400);
    let found = sync_check::take_violations();
    assert!(
        found.is_empty(),
        "consistent ordering must not add violations: {found:?}"
    );
}

/// RwLock acquisitions participate in the order graph too: a read-write
/// inversion against a mutex is still a potential deadlock.
#[test]
fn rwlock_participates_in_order_graph() {
    let _serial = begin();
    let m = Mutex::new(());
    let rw = RwLock::new(());
    {
        let _gm = m.lock();
        let _gr = rw.read(); // M -> RW
    }
    {
        let _gw = rw.write();
        let _gm = m.lock(); // RW -> M: cycle
    }
    let found = sync_check::take_violations();
    assert!(
        found
            .iter()
            .filter(|v| v.kind == "lock-cycle")
            .any(|v| v.detail.contains("sync_check.rs")),
        "expected rwlock/mutex cycle, got: {found:?}"
    );
}

/// The monotonic witness accepts ordered writes and flags regressions,
/// honoring strict vs non-decreasing domains.
#[test]
fn witness_flags_regressions_only() {
    let _serial = begin();
    sync_check::witness_monotonic("test.nondec", 7, 10, false);
    sync_check::witness_monotonic("test.nondec", 7, 10, false); // equal: ok
    sync_check::witness_monotonic("test.nondec", 7, 11, false);
    sync_check::witness_monotonic("test.strict", 7, 1, true);
    sync_check::witness_monotonic("test.strict", 7, 2, true);
    let clean = sync_check::violations();
    assert!(clean.is_empty(), "ordered writes flagged: {clean:?}");

    sync_check::witness_monotonic("test.nondec", 7, 5, false); // regression
    sync_check::witness_monotonic("test.strict", 7, 2, true); // repeat under strict
    let flagged = sync_check::take_violations();
    assert_eq!(flagged.len(), 2, "expected both regressions: {flagged:?}");
    assert!(flagged.iter().all(|v| v.kind == "non-monotonic-write"));
}

/// Contended acquisitions are counted and show up in the report.
#[test]
fn contention_is_counted() {
    let _serial = begin();
    let m = std::sync::Arc::new(Mutex::new(0u64));
    let m2 = m.clone();
    let guard = m.lock();
    let waiter = std::thread::spawn(move || {
        *m2.lock() += 1; // blocks until the main thread releases
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    drop(guard);
    waiter.join().unwrap();
    let stats = sync_check::contention();
    assert!(
        stats.iter().any(|s| s.contended > 0),
        "expected at least one contended acquisition: {stats:?}"
    );
    assert!(sync_check::report().contains("hot locks"));
}

/// Holds longer than the (lowered) threshold are reported as long holds.
#[test]
fn long_holds_are_reported() {
    let _serial = begin();
    sync_check::set_long_hold_threshold_micros(1_000);
    let m = Mutex::new(());
    {
        let _g = m.lock();
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let holds = sync_check::long_holds();
    assert!(
        holds.iter().any(|h| h.max_micros >= 1_000),
        "expected a long hold past 1ms: {holds:?}"
    );
    sync_check::set_long_hold_threshold_micros(100_000);
}

/// Condvar waits release the lock for ordering purposes, and the
/// notification round trip still works through the instrumented guards.
#[test]
fn condvar_wait_releases_hold() {
    let _serial = begin();
    let shared = std::sync::Arc::new((Mutex::new(0u32), Condvar::new()));
    let shared2 = shared.clone();
    let waiter = std::thread::spawn(move || {
        let (lock, cv) = &*shared2;
        let mut guard = lock.lock();
        while *guard == 0 {
            let (next, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_secs(5));
            guard = next;
            assert!(!timed_out, "notify never arrived");
        }
        *guard
    });
    std::thread::sleep(std::time::Duration::from_millis(5));
    {
        let (lock, cv) = &*shared;
        *lock.lock() = 42;
        cv.notify_all();
    }
    assert_eq!(waiter.join().unwrap(), 42);
    let found = sync_check::take_violations();
    assert!(found.is_empty(), "condvar flow flagged: {found:?}");
}
