//! Offline shim for the `proptest` API subset used by this workspace.
//!
//! A deterministic mini property-testing harness: each `proptest!` test
//! runs a fixed number of cases, with inputs generated from a seed
//! derived from the test name and case index — fully reproducible, no
//! shrinking. Failures report the case number so a failing input can be
//! regenerated.

use std::ops::{Range, RangeInclusive};

/// Number of generated cases per property.
pub const CASES: u32 = 64;

/// The deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Produces the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        self.next_u64() % bound
    }
}

/// A failed test case, produced by the `prop_assert*` macros or
/// [`TestCaseError::fail`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed_gen(self) -> BoxedGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        Box::new(move |rng| s.generate(rng))
    }
}

/// A type-erased generator function.
pub type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among equally-weighted alternatives (see
/// [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedGen<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedGen<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u64) as usize;
        (self.arms[arm])(rng)
    }
}

/// Strategy for "any value" of a primitive type (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // Mix edge cases in (min/max/zero show up often in bugs).
                match rng.below(16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let value = self.start + unit * (self.end - self.start);
        // `start + unit * span` can round up to `end`; clamp back inside.
        if value < self.end {
            value
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
}

/// Simple pattern strategies: `&str` generates strings. Only the
/// `.{min,max}` pattern family the workspace uses is supported; anything
/// else panics loudly rather than silently generating the wrong shape.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repetition(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?}: the shim supports `.{{min,max}}` only")
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                // Mostly ASCII, some multi-byte chars to exercise UTF-8
                // handling.
                match rng.below(8) {
                    0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('ß'),
                    _ => (0x20 + rng.below(0x5F) as u8) as char,
                }
            })
            .collect()
    }
}

fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let inner = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = inner.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies, under the `prop::collection` path like the
/// real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy producing `Vec`s of `element` with a length drawn
        /// from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// A length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedGen, Just, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Defines property tests. Each `#[test]` function runs [`CASES`]
/// deterministic cases; its body may use the `prop_assert*` macros and
/// `return Err(TestCaseError::...)`, as with the real crate.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut prop_rng);)+
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!("property `{}` failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) like the real crate.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed_gen($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = prop::collection::vec(0u64..100, 1..10);
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = TestRng::for_case("s", 0);
        for _ in 0..200 {
            let s = ".{0,16}".generate(&mut rng);
            assert!(s.chars().count() <= 16);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1), Just(2), Just(3)];
        let mut rng = TestRng::for_case("cover", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #[test]
        fn macro_end_to_end(x in 1u32..10, items in prop::collection::vec(any::<i64>(), 0..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(items.len() <= 4);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn macro_supports_early_err(flag in any::<bool>()) {
            if std::hint::black_box(false) {
                return Err(TestCaseError::fail("unreachable"));
            }
            prop_assert!(true);
            let _ = flag;
        }
    }

    #[test]
    fn macro_tests_run() {
        macro_end_to_end();
        macro_supports_early_err();
    }
}
