//! Offline shim for the `rand` API subset used by this workspace:
//! a seedable deterministic generator with `gen_range`/`gen_bool`.
//!
//! The underlying stream is SplitMix64 — not the real `StdRng`
//! (ChaCha12), but the workspace only relies on determinism per seed and
//! reasonable statistical quality, never on a specific stream.

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types from which a uniform sample can be drawn over a range.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Maps 64 random bits to a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1i64..=4);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
