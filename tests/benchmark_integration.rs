//! End-to-end benchmark integration: the full three-phase process over
//! the complete setup matrix, at test scale.

use streambench_core::{all_setups, BenchConfig, BenchmarkRunner, Measurement, Query};

fn runner() -> BenchmarkRunner {
    BenchmarkRunner::new(
        BenchConfig::quick()
            .records(400)
            .runs(2)
            .parallelisms(vec![1, 2]),
    )
}

fn setups_of(measurements: &[Measurement]) -> std::collections::HashSet<String> {
    measurements.iter().map(|m| m.setup.to_string()).collect()
}

#[test]
fn full_matrix_identity() {
    let measurements = runner().run_query(Query::Identity).unwrap();
    // 12 setups × 2 runs.
    assert_eq!(measurements.len(), 24);
    assert_eq!(setups_of(&measurements).len(), 12);
    for m in &measurements {
        assert_eq!(
            m.output_records, 400,
            "identity must forward everything: {m:?}"
        );
        assert!(m.execution_seconds >= 0.0);
    }
}

#[test]
fn full_matrix_projection_counts() {
    let measurements = runner().run_query(Query::Projection).unwrap();
    for m in &measurements {
        assert_eq!(
            m.output_records, 400,
            "projection keeps the record count: {m:?}"
        );
    }
}

#[test]
fn full_matrix_grep_counts() {
    let measurements = runner().run_query(Query::Grep).unwrap();
    let expected = streambench_core::data::expected_grep_hits(400);
    for m in &measurements {
        assert_eq!(m.output_records, expected, "{m:?}");
    }
}

#[test]
fn full_matrix_sample_agrees_everywhere() {
    let measurements = runner().run_query(Query::Sample).unwrap();
    let counts: std::collections::HashSet<u64> =
        measurements.iter().map(|m| m.output_records).collect();
    assert_eq!(
        counts.len(),
        1,
        "content-determined sampling must agree across engines"
    );
    let count = *counts.iter().next().unwrap();
    let rate = count as f64 / 400.0;
    assert!((0.30..=0.50).contains(&rate), "sample rate {rate}");
}

#[test]
fn setup_matrix_is_complete() {
    let setups = all_setups(&[1, 2]);
    assert_eq!(
        setups.len(),
        12,
        "paper §III-A2: twelve execution setups per query"
    );
}

#[test]
fn measurements_are_reproducible_in_output() {
    // Two separate campaigns over the same seed produce identical output
    // counts (timings of course vary).
    let a = runner().run_query(Query::Sample).unwrap();
    let b = runner().run_query(Query::Sample).unwrap();
    let counts = |ms: &[Measurement]| -> Vec<u64> { ms.iter().map(|m| m.output_records).collect() };
    assert_eq!(counts(&a), counts(&b));
}

#[test]
fn noise_model_changes_timings_not_outputs() {
    let config = BenchConfig::quick()
        .records(300)
        .runs(2)
        .parallelisms(vec![1])
        .request_latency_micros(200)
        .with_noise(42);
    let measurements = BenchmarkRunner::new(config).run_query(Query::Grep).unwrap();
    let expected = streambench_core::data::expected_grep_hits(300);
    for m in &measurements {
        assert_eq!(m.output_records, expected);
    }
}
