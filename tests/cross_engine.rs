//! Cross-engine, cross-API output equality: for every query, all eight
//! implementation variants (3 native engines + the abstraction layer on
//! 4 runners) must produce byte-identical output sets. This is the
//! precondition that makes the paper's performance comparison meaningful.

use beamline::runners::{ApxRunner, DStreamRunner, DirectRunner, RillRunner};
use beamline::PipelineRunner;
use logbus::{Broker, TopicConfig};
use streambench_core::{
    beam_pipeline, fresh_yarn_cluster, native_apx, native_dstream, native_rill, Query, SenderConfig,
};

const RECORDS: u64 = 500;

fn loaded_broker() -> Broker {
    let broker = Broker::new();
    broker
        .create_topic("input", TopicConfig::default())
        .unwrap();
    streambench_core::send_workload(
        &broker,
        "input",
        &SenderConfig {
            records: RECORDS,
            ..SenderConfig::default()
        },
    )
    .unwrap();
    broker
}

fn sorted_output(broker: &Broker, topic: &str) -> Vec<Vec<u8>> {
    let n = broker.latest_offset(topic, 0).unwrap();
    let mut values: Vec<Vec<u8>> = broker
        .fetch(topic, 0, 0, n as usize)
        .unwrap()
        .into_iter()
        .map(|r| r.record.value.to_vec())
        .collect();
    values.sort();
    values
}

fn run_all_variants(query: Query) -> Vec<(String, Vec<Vec<u8>>)> {
    let broker = loaded_broker();
    let mut outputs = Vec::new();

    let fresh = |name: &str| {
        let topic = format!("out-{name}");
        broker.create_topic(&topic, TopicConfig::default()).unwrap();
        topic
    };

    let topic = fresh("native-rill");
    native_rill(&broker, query, "input", &topic, 1).unwrap();
    outputs.push(("native rill".to_string(), sorted_output(&broker, &topic)));

    let topic = fresh("native-dstream");
    native_dstream(&broker, query, "input", &topic, 1, 128).unwrap();
    outputs.push(("native dstream".to_string(), sorted_output(&broker, &topic)));

    let topic = fresh("native-apx");
    let mut rm = fresh_yarn_cluster();
    native_apx(&broker, query, "input", &topic, 1, &mut rm).unwrap();
    outputs.push(("native apx".to_string(), sorted_output(&broker, &topic)));

    let runners: Vec<(&str, Box<dyn PipelineRunner>)> = vec![
        ("beam direct", Box::new(DirectRunner::new())),
        ("beam rill", Box::new(RillRunner::new())),
        (
            "beam dstream",
            Box::new(DStreamRunner::new().with_batch_records(128)),
        ),
        ("beam apx", Box::new(ApxRunner::new().with_window_size(64))),
    ];
    for (name, runner) in runners {
        let topic = fresh(&name.replace(' ', "-"));
        let pipeline = beam_pipeline(&broker, query, "input", &topic);
        runner.run(&pipeline).unwrap();
        outputs.push((name.to_string(), sorted_output(&broker, &topic)));
    }
    outputs
}

fn assert_all_equal(query: Query) {
    let outputs = run_all_variants(query);
    let (reference_name, reference) = &outputs[0];
    assert!(!reference.is_empty(), "{query}: empty reference output");
    for (name, output) in &outputs[1..] {
        assert_eq!(
            output.len(),
            reference.len(),
            "{query}: {name} count differs from {reference_name}"
        );
        assert_eq!(
            output, reference,
            "{query}: {name} differs from {reference_name}"
        );
    }
}

#[test]
fn identity_outputs_identical_everywhere() {
    assert_all_equal(Query::Identity);
}

#[test]
fn sample_outputs_identical_everywhere() {
    assert_all_equal(Query::Sample);
}

#[test]
fn projection_outputs_identical_everywhere() {
    assert_all_equal(Query::Projection);
}

#[test]
fn grep_outputs_identical_everywhere() {
    assert_all_equal(Query::Grep);
}

#[test]
fn projection_extracts_first_column() {
    let broker = loaded_broker();
    broker.create_topic("out", TopicConfig::default()).unwrap();
    native_rill(&broker, Query::Projection, "input", "out", 1).unwrap();
    for value in sorted_output(&broker, "out") {
        assert!(!value.contains(&b'\t'), "projected value contains a tab");
        assert!(!value.is_empty());
        assert!(
            value.iter().all(u8::is_ascii_digit),
            "first column is the user id"
        );
    }
}

#[test]
fn grep_outputs_contain_the_needle() {
    let broker = loaded_broker();
    broker.create_topic("out", TopicConfig::default()).unwrap();
    native_dstream(&broker, Query::Grep, "input", "out", 1, 64).unwrap();
    let out = sorted_output(&broker, "out");
    assert_eq!(
        out.len() as u64,
        streambench_core::data::expected_grep_hits(RECORDS)
    );
    for value in out {
        assert!(value.windows(4).any(|w| w == b"test"));
    }
}
