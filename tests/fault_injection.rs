//! Failure behaviour across the stack (the paper lists fault-tolerance
//! behaviour as future benchmark work, §V): panicking operators must
//! surface as clean job failures, release cluster resources, and never
//! hang the harness.

use bytes::Bytes;
use logbus::{Broker, TopicConfig};
use streambench_core::fresh_yarn_cluster;

fn broker_with_records(n: usize) -> Broker {
    let broker = Broker::new();
    broker.create_topic("in", TopicConfig::default()).unwrap();
    broker.create_topic("out", TopicConfig::default()).unwrap();
    for i in 0..n {
        broker
            .produce("in", 0, logbus::Record::from_value(format!("r{i}")))
            .unwrap();
    }
    broker
}

#[test]
fn rill_operator_panic_fails_job() {
    let broker = broker_with_records(100);
    let env = rill::StreamExecutionEnvironment::local();
    env.add_source(rill::BrokerSource::new(broker.clone(), "in"))
        .map(|v: Bytes| {
            if v.ends_with(b"50") {
                panic!("injected operator failure");
            }
            v
        })
        .add_sink(rill::BrokerSink::new(broker.clone(), "out"));
    let err = env.execute("faulty").unwrap_err();
    assert!(matches!(err, rill::Error::TaskPanicked { .. }), "{err:?}");
}

#[test]
fn rill_panic_downstream_of_exchange_terminates() {
    let broker = broker_with_records(5_000);
    let env = rill::StreamExecutionEnvironment::local();
    env.set_parallelism(2);
    env.add_source(rill::BrokerSource::new(broker.clone(), "in"))
        .rebalance()
        .map(|v: Bytes| {
            if v.ends_with(b"999") {
                panic!("downstream failure");
            }
            v
        })
        .add_sink(rill::BrokerSink::new(broker.clone(), "out"));
    // Must fail, not deadlock on the full exchange channel.
    let err = env.execute("faulty").unwrap_err();
    assert!(matches!(err, rill::Error::TaskPanicked { .. }));
}

#[test]
fn apx_operator_panic_fails_application_and_releases_containers() {
    let broker = broker_with_records(100);
    let mut rm = fresh_yarn_cluster();
    let dag = apx::Dag::new("faulty");
    dag.add_input("in", apx::KafkaInput::new(broker.clone(), "in"))
        .unwrap()
        .add_operator::<Bytes, _>(
            "boom",
            apx::FnOperator::new(|v: Bytes, e: &mut dyn apx::Emitter<Bytes>| {
                if v.ends_with(b"42") {
                    panic!("injected");
                }
                e.emit(v);
            }),
            apx::Link::Network(std::sync::Arc::new(apx::BytesCodec)),
        )
        .unwrap()
        .add_output(
            "out",
            apx::KafkaOutput::new(broker.clone(), "out"),
            apx::Link::Network(std::sync::Arc::new(apx::BytesCodec)),
        )
        .unwrap();
    let err = apx::Stram::run(&dag, &mut rm, &apx::StramConfig::default()).unwrap_err();
    assert!(matches!(err, apx::Error::TaskPanicked(_)));
    // The failed application released everything.
    let metrics = rm.metrics();
    assert_eq!(metrics.live_containers, 0);
    assert_eq!(metrics.active_applications, 0);
}

#[test]
fn apx_survives_node_failure_with_container_reallocation() {
    let broker = broker_with_records(100);
    let mut rm = fresh_yarn_cluster();
    let dag = apx::Dag::new("resilient");
    dag.add_input("in", apx::KafkaInput::new(broker.clone(), "in"))
        .unwrap()
        .add_output(
            "out",
            apx::KafkaOutput::new(broker.clone(), "out"),
            apx::Link::Network(std::sync::Arc::new(apx::BytesCodec)),
        )
        .unwrap();
    let app = apx::Stram::launch(&dag, &mut rm, &apx::StramConfig::default()).unwrap();

    // Fail the machine hosting the application master mid-flight: the RM
    // must reallocate its containers onto the surviving node.
    let master = rm.application(app.app_id()).unwrap().master;
    let failed = rm.container(master).unwrap().node;
    let live_before = rm.metrics().live_containers;
    let moved = rm.fail_node(failed).unwrap();
    assert!(!moved.is_empty(), "the failed node hosted work to move");
    assert!(moved.iter().all(|c| c.node != failed));
    assert_eq!(
        rm.metrics().live_containers,
        live_before,
        "every container came back on the healthy node"
    );

    app.await_completion(&mut rm).unwrap();
    let records = broker.fetch("out", 0, 0, 1_000).unwrap();
    assert_eq!(records.len(), 100, "query output survives the node failure");
    let metrics = rm.metrics();
    assert_eq!(metrics.live_containers, 0);
    assert_eq!(metrics.active_applications, 0);
}

#[test]
fn beam_dofn_panic_on_rill_runner_fails_cleanly() {
    use beamline::PipelineRunner;
    let broker = broker_with_records(50);
    let pipeline = beamline::Pipeline::new();
    pipeline
        .apply(beamline::BrokerIO::read(broker.clone(), "in"))
        .apply(beamline::WithoutMetadata::new())
        .apply(beamline::Values::create(std::sync::Arc::new(
            beamline::BytesCoder,
        )))
        .apply(beamline::MapElements::into_bytes("Boom", |v: Bytes| {
            if v.ends_with(b"25") {
                panic!("injected DoFn failure");
            }
            v
        }))
        .apply(beamline::BrokerIO::write(broker.clone(), "out"));
    let err = beamline::runners::RillRunner::new()
        .run(&pipeline)
        .unwrap_err();
    assert!(matches!(err, beamline::Error::Engine(_)), "{err:?}");
}

#[test]
fn sink_to_deleted_topic_does_not_hang() {
    // A mid-run topic deletion turns the async producer into a black
    // hole; the job must still terminate (fire-and-forget semantics).
    let broker = broker_with_records(100);
    broker.delete_topic("out").unwrap();
    let env = rill::StreamExecutionEnvironment::local();
    env.add_source(rill::BrokerSource::new(broker.clone(), "in"))
        .map(|v: Bytes| v)
        .add_sink(rill::BrokerSink::new(broker.clone(), "out"));
    env.execute("black-hole").unwrap();
    assert!(!broker.has_topic("out"));
}
