//! Execution-plan shape: the paper's Fig. 12 (native grep: three plan
//! elements) versus Fig. 13 (abstraction-layer grep: seven plan
//! elements), extracted from the rill engine.

use beamline::runners::RillRunner;
use logbus::{Broker, TopicConfig};
use streambench_core::{beam_pipeline, queries, Query};

fn broker() -> Broker {
    let b = Broker::new();
    b.create_topic("input", TopicConfig::default()).unwrap();
    b.create_topic("output", TopicConfig::default()).unwrap();
    b
}

#[test]
fn figure_12_native_grep_plan_has_three_elements() {
    let plan = queries::native_rill_plan(broker(), Query::Grep);
    assert_eq!(
        plan.element_count(),
        3,
        "Fig. 12: data source, operator, data sink"
    );
    assert_eq!(plan.operator_count(), 1);
    let names: Vec<&str> = plan.nodes().iter().map(|n| n.name.as_str()).collect();
    assert!(names[0].starts_with("Source:"), "{names:?}");
    assert_eq!(
        names[1], "Filter",
        "the grep query is a filter, as in Fig. 12"
    );
    assert!(names[2].starts_with("Sink:"), "{names:?}");
    assert!(plan.nodes().iter().all(|n| n.parallelism == 1));
    assert_eq!(plan.chains().len(), 1, "the native plan is fully chained");
}

#[test]
fn figure_13_beam_grep_plan_has_seven_elements() {
    let broker = broker();
    let pipeline = beam_pipeline(&broker, Query::Grep, "input", "output");
    let plan = RillRunner::new().plan(&pipeline).unwrap();
    assert_eq!(
        plan.element_count(),
        7,
        "Fig. 13: source + flat map + five ParDos"
    );
    assert_eq!(
        plan.nodes()[0].name,
        "Source: PTransformTranslation.UnknownRawPTransform"
    );
    assert_eq!(plan.nodes()[1].name, "Flat Map");
    assert_eq!(
        plan.nodes_named_like("ParDoTranslation.RawParDo").len(),
        5,
        "five RawParDo stages, as the paper describes"
    );
    assert!(plan.nodes().iter().all(|n| n.parallelism == 1));
}

#[test]
fn every_native_query_plan_has_three_elements() {
    for query in Query::ALL {
        let plan = queries::native_rill_plan(broker(), query);
        assert_eq!(plan.element_count(), 3, "query {query}");
    }
}

#[test]
fn every_beam_query_plan_has_seven_elements() {
    let broker = broker();
    for query in Query::ALL {
        let pipeline = beam_pipeline(&broker, query, "input", "output");
        let plan = RillRunner::new().plan(&pipeline).unwrap();
        assert_eq!(plan.element_count(), 7, "query {query}");
    }
}

#[test]
fn beam_plan_is_larger_by_factor_the_paper_reports() {
    // "The plan for the query implemented using Apache Beam is
    // significantly larger" — 7 vs 3 elements.
    let broker = broker();
    let native = queries::native_rill_plan(&broker, Query::Grep);
    let beam = RillRunner::new()
        .plan(&beam_pipeline(&broker, Query::Grep, "input", "output"))
        .unwrap();
    assert!(beam.element_count() > 2 * native.element_count());
}
