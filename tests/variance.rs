//! The variance experiments (paper Fig. 10 / Table III): with the
//! environment-noise model enabled, run-to-run execution times show the
//! outlier-driven coefficients of variation the paper reports; without
//! it, the in-process substrate is nearly deterministic.

use streambench_core::{report, stats, Api, BenchConfig, BenchmarkRunner, Query, System};

fn times_of(measurements: &[streambench_core::Measurement], system: System, api: Api) -> Vec<f64> {
    measurements
        .iter()
        .filter(|m| m.setup.system == system && m.setup.api == api)
        .map(|m| m.execution_seconds)
        .collect()
}

#[test]
fn noise_inflates_relative_std_dev() {
    let base = BenchConfig::quick()
        .records(2_000)
        .runs(6)
        .parallelisms(vec![1])
        .request_latency_micros(100);

    let quiet = BenchmarkRunner::new(base.clone())
        .run_query(Query::Identity)
        .unwrap();
    let noisy = BenchmarkRunner::new(base.with_noise(2019))
        .run_query(Query::Identity)
        .unwrap();

    // Use the most latency-bound cell (identity via the abstraction layer
    // on the apx engine pays a broker round trip per output record), so
    // the drawn latency factors dominate the measured time.
    let quiet_rsd = stats::relative_std_dev(&times_of(&quiet, System::Apx, Api::Beam));
    let noisy_rsd = stats::relative_std_dev(&times_of(&noisy, System::Apx, Api::Beam));
    assert!(
        noisy_rsd > quiet_rsd,
        "noise must raise the CV: quiet {quiet_rsd:.3} vs noisy {noisy_rsd:.3}"
    );
    assert!(
        noisy_rsd > 0.10,
        "outliers should be clearly visible, got {noisy_rsd:.3}"
    );
}

#[test]
fn noise_is_reproducible_by_seed() {
    let config = BenchConfig::quick()
        .records(1_000)
        .runs(3)
        .parallelisms(vec![1])
        .request_latency_micros(100)
        .with_noise(7);
    let a = BenchmarkRunner::new(config.clone())
        .run_query(Query::Grep)
        .unwrap();
    let b = BenchmarkRunner::new(config).run_query(Query::Grep).unwrap();
    // Outputs identical; timings similar in structure (same factors drawn).
    let counts = |ms: &[streambench_core::Measurement]| -> Vec<u64> {
        ms.iter().map(|m| m.output_records).collect()
    };
    assert_eq!(counts(&a), counts(&b));
}

#[test]
fn table_three_renders_per_run_series() {
    let config = BenchConfig::quick()
        .records(1_500)
        .runs(4)
        .parallelisms(vec![1, 2])
        .request_latency_micros(100)
        .with_noise(2019);
    let measurements = BenchmarkRunner::new(config)
        .run_query(Query::Identity)
        .unwrap();
    let per_run = report::per_run_times(&measurements, System::Rill, Api::Native, Query::Identity);
    assert_eq!(per_run.len(), 2, "both parallelisms present");
    assert_eq!(per_run[&1].len(), 4, "one entry per run");
    let rendered = report::table_three(&per_run);
    assert!(rendered.contains("Parallelism = 1"));
    assert!(rendered.contains("Parallelism = 2"));
    assert_eq!(
        rendered.lines().count(),
        2 + 4,
        "header + separator + 4 runs"
    );
}
